open Cisp_sim

let check_float eps = Alcotest.(check (float eps))

(* ---------- Engine ---------- *)

let test_engine_order () =
  let eng = Engine.create () in
  let log = ref [] in
  Engine.schedule eng ~at:3.0 (fun () -> log := 3 :: !log);
  Engine.schedule eng ~at:1.0 (fun () -> log := 1 :: !log);
  Engine.schedule eng ~at:2.0 (fun () -> log := 2 :: !log);
  Engine.run eng ~until:10.0;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  check_float 1e-12 "clock advances to until" 10.0 (Engine.now eng);
  Alcotest.(check int) "events" 3 (Engine.events_processed eng)

let test_engine_until () =
  let eng = Engine.create () in
  let fired = ref false in
  Engine.schedule eng ~at:5.0 (fun () -> fired := true);
  Engine.run eng ~until:4.0;
  Alcotest.(check bool) "not yet" false !fired;
  Engine.run eng ~until:6.0;
  Alcotest.(check bool) "now fired" true !fired

let test_engine_cascade () =
  let eng = Engine.create () in
  let count = ref 0 in
  let rec chain n =
    if n > 0 then
      Engine.schedule_in eng ~after:1.0 (fun () ->
          incr count;
          chain (n - 1))
  in
  chain 5;
  Engine.run eng ~until:100.0;
  Alcotest.(check int) "cascaded events" 5 !count

(* ---------- Net ---------- *)

let mk_pkt ?(flow = 1) ?(size = 1000) route =
  { Net.flow_id = flow; size_bytes = size; route; hop = 0; injected_at = 0.0; payload = 0 }

let test_net_delivery_delay () =
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:2 in
  (* 1 Gbps, 10 ms: 1000 B takes 8 us tx + 10 ms prop. *)
  Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:10.0 ~buffer_bytes:1_000_000;
  Net.inject net (mk_pkt [| 0; 1 |]);
  Engine.run eng ~until:1.0;
  let s = Net.flow_stats net 1 in
  Alcotest.(check int) "delivered" 1 s.Net.delivered;
  check_float 1e-6 "delay = tx + prop" (0.010008 *. 1000.0) (Net.mean_delay_ms net)

let test_net_multihop () =
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:3 in
  Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:5.0 ~buffer_bytes:1_000_000;
  Net.add_duplex net 1 2 ~gbps:1.0 ~delay_ms:5.0 ~buffer_bytes:1_000_000;
  Net.inject net (mk_pkt [| 0; 1; 2 |]);
  Engine.run eng ~until:1.0;
  check_float 1e-4 "two hops" (10.016) (Net.mean_delay_ms net)

let test_net_queueing_delay () =
  (* Two packets back to back: the second waits one serialization time. *)
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:2 in
  Net.add_duplex net 0 1 ~gbps:0.001 ~delay_ms:0.0 ~buffer_bytes:1_000_000;
  (* 1 Mbps: 1000 B = 8 ms serialization *)
  Net.inject net (mk_pkt ~flow:1 [| 0; 1 |]);
  Net.inject net (mk_pkt ~flow:2 [| 0; 1 |]);
  Engine.run eng ~until:1.0;
  let s1 = Net.flow_stats net 1 and s2 = Net.flow_stats net 2 in
  check_float 1e-6 "first 8ms" 0.008 s1.Net.delay_sum_s;
  check_float 1e-6 "second 16ms" 0.016 s2.Net.delay_sum_s

let test_net_drop_when_full () =
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:2 in
  (* Buffer fits exactly one packet. *)
  Net.add_duplex net 0 1 ~gbps:0.001 ~delay_ms:0.0 ~buffer_bytes:1000;
  Net.inject net (mk_pkt ~flow:1 [| 0; 1 |]);
  Net.inject net (mk_pkt ~flow:2 [| 0; 1 |]);
  Engine.run eng ~until:1.0;
  Alcotest.(check int) "second dropped" 1 (Net.flow_stats net 2).Net.dropped;
  Alcotest.(check bool) "loss rate" true (Net.loss_rate net = 0.5);
  match Net.link_stats net ~src:0 ~dst:1 with
  | Some ls -> Alcotest.(check int) "link drop counter" 1 ls.Net.drops
  | None -> Alcotest.fail "link exists"

let test_net_broken_route () =
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:3 in
  Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:1.0 ~buffer_bytes:1_000_000;
  Net.inject net (mk_pkt [| 0; 2 |]);
  Engine.run eng ~until:1.0;
  Alcotest.(check int) "dropped" 1 (Net.flow_stats net 1).Net.dropped

let test_net_stats_read_only () =
  (* Reading stats for an id no packet ever used must not create a
     flow record (the old get-or-create path polluted the table). *)
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:2 in
  Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:1.0 ~buffer_bytes:1_000_000;
  Net.inject net (mk_pkt ~flow:1 [| 0; 1 |]);
  Engine.run eng ~until:1.0;
  let ghost = Net.flow_stats net 999 in
  Alcotest.(check int) "ghost flow reads zero" 0 ghost.Net.sent;
  Alcotest.(check (option reject)) "ghost flow option is None" None
    (Net.flow_stats_opt net 999);
  Alcotest.(check int) "table still holds only the real flow" 1
    (List.length (Net.all_flow_stats net));
  Alcotest.(check bool) "real flow still readable" true
    (Option.is_some (Net.flow_stats_opt net 1))

let test_net_utilization () =
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:2 in
  Net.add_duplex net 0 1 ~gbps:0.001 ~delay_ms:0.0 ~buffer_bytes:1_000_000;
  (* 5 packets x 8 ms = 40 ms busy *)
  for i = 1 to 5 do
    Net.inject net (mk_pkt ~flow:i [| 0; 1 |])
  done;
  Engine.run eng ~until:1.0;
  check_float 1e-6 "utilization" 0.04 (Net.utilization net ~src:0 ~dst:1 ~duration_s:1.0);
  check_float 1e-6 "max utilization" 0.04 (Net.max_utilization net ~duration_s:1.0)

let test_net_utilization_guards () =
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:2 in
  Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:1.0 ~buffer_bytes:1_000_000;
  Alcotest.check_raises "zero duration rejected"
    (Invalid_argument "Net.utilization: duration_s <= 0") (fun () ->
      ignore (Net.utilization net ~src:0 ~dst:1 ~duration_s:0.0));
  Alcotest.check_raises "negative duration rejected"
    (Invalid_argument "Net.max_utilization: duration_s <= 0") (fun () ->
      ignore (Net.max_utilization net ~duration_s:(-1.0)))

let test_net_flush_telemetry () =
  (* With telemetry enabled, teardown flushes link/flow totals; the
     sim's own results are unaffected. *)
  Cisp_util.Telemetry.reset ();
  Fun.protect ~finally:Cisp_util.Telemetry.reset (fun () ->
      Cisp_util.Telemetry.enable_metrics ();
      let eng = Engine.create () in
      let net = Net.create eng ~n_nodes:2 in
      Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:1.0 ~buffer_bytes:1_000_000;
      Net.inject net (mk_pkt ~flow:1 [| 0; 1 |]);
      Engine.run eng ~until:1.0;
      Net.flush_telemetry net;
      Alcotest.(check bool) "events counted" true (Cisp_util.Telemetry.counter "sim.events" > 0);
      Alcotest.(check int) "links flushed (duplex = 2 directed)" 2
        (Cisp_util.Telemetry.counter "sim.links");
      Alcotest.(check int) "flow sends flushed" 1 (Cisp_util.Telemetry.counter "sim.flow_sent");
      Alcotest.(check int) "flow deliveries flushed" 1
        (Cisp_util.Telemetry.counter "sim.flow_delivered"))

(* ---------- Udp ---------- *)

let test_udp_rate () =
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:2 in
  Net.add_duplex net 0 1 ~gbps:10.0 ~delay_ms:1.0 ~buffer_bytes:10_000_000;
  let demands = [| [| 0.0; 0.1 |]; [| 0.0; 0.0 |] |] in
  let paths = Hashtbl.create 1 in
  Hashtbl.replace paths (0, 1) [| 0; 1 |];
  Udp.poisson_commodities net ~paths ~demands_gbps:demands ~packet_bytes:500 ~start:0.0 ~stop:0.1;
  Engine.run eng ~until:0.5;
  (* 0.1 Gbps for 0.1 s at 500 B = 2500 packets expected *)
  let s = Net.flow_stats net (Udp.flow_id ~src:0 ~dst:1 ~n:2) in
  Alcotest.(check bool)
    (Printf.sprintf "poisson count %d ~ 2500" s.Net.sent)
    true
    (s.Net.sent > 2200 && s.Net.sent < 2800);
  Alcotest.(check int) "all delivered" s.Net.sent s.Net.delivered

(* ---------- Tcp ---------- *)

let test_tcp_completes () =
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:3 in
  Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:2.0 ~buffer_bytes:max_int;
  Net.add_duplex net 1 2 ~gbps:0.1 ~delay_ms:2.0 ~buffer_bytes:max_int;
  let fct = ref None in
  Tcp.start_flow net (Tcp.default_config ~ack_delay_s:0.004) ~flow_id:7 ~route:[| 0; 1; 2 |]
    ~size_bytes:100_000 ~at:0.0 ~on_complete:(fun t -> fct := Some t);
  Engine.run eng ~until:30.0;
  match !fct with
  | None -> Alcotest.fail "flow never completed"
  | Some t ->
    (* 100 KB over a 100 Mbps bottleneck is at least 8 ms of pure
       serialization plus slow-start round trips. *)
    Alcotest.(check bool) (Printf.sprintf "fct %.3f sensible" t) true (t > 0.008 && t < 5.0)

let test_tcp_pacing_smaller_bursts () =
  let queue_peak ~pacing =
    let eng = Engine.create () in
    let net = Net.create eng ~n_nodes:3 in
    Net.add_duplex net 0 1 ~gbps:10.0 ~delay_ms:2.0 ~buffer_bytes:max_int;
    Net.add_duplex net 1 2 ~gbps:0.1 ~delay_ms:2.0 ~buffer_bytes:max_int;
    let cfg = { (Tcp.default_config ~ack_delay_s:0.004) with Tcp.pacing } in
    Tcp.start_flow net cfg ~flow_id:7 ~route:[| 0; 1; 2 |] ~size_bytes:200_000 ~at:0.0
      ~on_complete:(fun _ -> ());
    Engine.run eng ~until:30.0;
    match Net.link_stats net ~src:1 ~dst:2 with
    | Some ls -> ls.Net.queue_peak_bytes
    | None -> 0
  in
  let unpaced = queue_peak ~pacing:false in
  let paced = queue_peak ~pacing:true in
  Alcotest.(check bool)
    (Printf.sprintf "paced peak %d < unpaced %d" paced unpaced)
    true (paced < unpaced)

let test_tcp_faster_on_faster_path () =
  let fct ~gbps =
    let eng = Engine.create () in
    let net = Net.create eng ~n_nodes:2 in
    Net.add_duplex net 0 1 ~gbps ~delay_ms:5.0 ~buffer_bytes:max_int;
    let out = ref 0.0 in
    Tcp.start_flow net (Tcp.default_config ~ack_delay_s:0.005) ~flow_id:1 ~route:[| 0; 1 |]
      ~size_bytes:500_000 ~at:0.0 ~on_complete:(fun t -> out := t);
    Engine.run eng ~until:60.0;
    !out
  in
  Alcotest.(check bool) "1G faster than 10M" true (fct ~gbps:1.0 < fct ~gbps:0.01)

(* ---------- Routing ---------- *)

let routing_fixture () =
  let sites =
    Array.init 4 (fun i ->
        let c =
          Cisp_geo.Geodesy.destination
            (Cisp_geo.Coord.make ~lat:39.0 ~lon:(-95.0))
            ~bearing_deg:(float_of_int i *. 90.0) ~distance_km:400.0
        in
        Cisp_data.City.make (Printf.sprintf "R%d" i) ~lat:(Cisp_geo.Coord.lat c)
          ~lon:(Cisp_geo.Coord.lon c) ~population:((i + 1) * 100_000))
  in
  let inputs =
    Cisp_design.Inputs.synthetic ~sites ~mw_stretch:1.02 ~mw_cost_per_km:0.02
      ~fiber_stretch:1.9
      ~traffic:(Cisp_traffic.Matrix.population_product sites)
  in
  let topo = Cisp_design.Topology.of_links inputs [ (0, 1); (1, 2); (0, 2) ] in
  { Routing.inputs; topology = topo; mw_gbps = (fun _ -> 1.0); fiber_gbps = 100.0 }

let test_routing_shortest_uses_mw () =
  let model = routing_fixture () in
  let demands = Cisp_traffic.Matrix.scale_to_gbps model.Routing.inputs.Cisp_design.Inputs.traffic ~aggregate_gbps:1.0 in
  let paths = Routing.paths model Routing.Shortest_path ~demands_gbps:demands in
  Alcotest.(check bool) "has paths" true (Hashtbl.length paths > 0);
  (* Every path starts at its source and ends at its destination. *)
  Hashtbl.iter
    (fun (s, t) route ->
      Alcotest.(check int) "starts at s" s route.(0);
      Alcotest.(check int) "ends at t" t route.(Array.length route - 1))
    paths

let test_routing_alternatives_not_faster () =
  let model = routing_fixture () in
  let demands = Cisp_traffic.Matrix.scale_to_gbps model.Routing.inputs.Cisp_design.Inputs.traffic ~aggregate_gbps:3.0 in
  let lat scheme =
    let paths = Routing.paths model scheme ~demands_gbps:demands in
    Routing.mean_route_latency_ms model paths ~demands_gbps:demands
  in
  let sp = lat Routing.Shortest_path in
  Alcotest.(check bool) "min-max >= shortest" true (lat Routing.Min_max_utilization >= sp -. 1e-9);
  Alcotest.(check bool) "throughput-opt >= shortest" true (lat Routing.Throughput_optimal >= sp -. 1e-9)

let test_routing_zero_demand_no_paths () =
  let model = routing_fixture () in
  let n = Cisp_design.Inputs.n_sites model.Routing.inputs in
  let demands = Array.make_matrix n n 0.0 in
  List.iter
    (fun scheme ->
      Alcotest.(check int) "no commodities, no routes" 0
        (Hashtbl.length (Routing.paths model scheme ~demands_gbps:demands)))
    [ Routing.Shortest_path; Routing.Min_max_utilization; Routing.Throughput_optimal;
      Routing.Bounded_stretch 1.3 ]

let test_routing_all_commodities_covered () =
  let model = routing_fixture () in
  let demands =
    Cisp_traffic.Matrix.scale_to_gbps model.Routing.inputs.Cisp_design.Inputs.traffic
      ~aggregate_gbps:2.0
  in
  (* 4 sites, all-pairs positive demand: 12 ordered commodities, under
     every scheme. *)
  List.iter
    (fun scheme ->
      Alcotest.(check int) "route per ordered pair" 12
        (Hashtbl.length (Routing.paths model scheme ~demands_gbps:demands)))
    [ Routing.Shortest_path; Routing.Min_max_utilization; Routing.Throughput_optimal;
      Routing.Bounded_stretch 1.3 ]

let test_routing_link_removal_reroutes () =
  (* Rewiring: taking the direct (0,2) MW link out of the topology
     must still route the (0,2) commodity — over the remaining MW
     links or the fiber mesh — and can only cost latency. *)
  let full = routing_fixture () in
  let degraded =
    { full with
      Routing.topology =
        Cisp_design.Topology.of_links full.Routing.inputs [ (0, 1); (1, 2) ] }
  in
  let demands =
    Cisp_traffic.Matrix.scale_to_gbps full.Routing.inputs.Cisp_design.Inputs.traffic
      ~aggregate_gbps:1.0
  in
  let paths_of m = Routing.paths m Routing.Shortest_path ~demands_gbps:demands in
  let p_full = paths_of full and p_deg = paths_of degraded in
  Alcotest.(check bool) "commodity (0,2) still routed" true (Hashtbl.mem p_deg (0, 2));
  let lat m p = Routing.mean_route_latency_ms m p ~demands_gbps:demands in
  Alcotest.(check bool) "rewiring never gains latency" true
    (lat degraded p_deg >= lat full p_full -. 1e-9)

let test_routing_bounded_stretch_honors_bound () =
  let model = routing_fixture () in
  let demands =
    Cisp_traffic.Matrix.scale_to_gbps model.Routing.inputs.Cisp_design.Inputs.traffic
      ~aggregate_gbps:3.0
  in
  let lat scheme =
    Routing.mean_route_latency_ms model
      (Routing.paths model scheme ~demands_gbps:demands)
      ~demands_gbps:demands
  in
  let sp = lat Routing.Shortest_path in
  (* Bound 1.0: every route is forced back to its shortest latency. *)
  Alcotest.(check (float 1e-9)) "bound 1.0 = shortest path" sp (lat (Routing.Bounded_stretch 1.0));
  (* A loose bound may spread load, but the demand-weighted mean can
     never exceed bound x the shortest-path mean. *)
  let b = 1.3 in
  let bounded = lat (Routing.Bounded_stretch b) in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.4f within %.1fx of %.4f" bounded b sp)
    true
    (bounded >= sp -. 1e-9 && bounded <= (b *. sp) +. 1e-9)

(* ---------- Builder ---------- *)

let test_builder_end_to_end () =
  let model = routing_fixture () in
  let inputs = model.Routing.inputs and topo = model.Routing.topology in
  let eng = Engine.create () in
  let net = Builder.build eng inputs topo ~mw_gbps:(fun _ -> 1.0) in
  let demands = Cisp_traffic.Matrix.scale_to_gbps inputs.Cisp_design.Inputs.traffic ~aggregate_gbps:0.5 in
  let paths = Routing.paths model Routing.Shortest_path ~demands_gbps:demands in
  Udp.poisson_commodities net ~paths ~demands_gbps:demands ~packet_bytes:500 ~start:0.0 ~stop:0.01;
  Engine.run eng ~until:0.5;
  Alcotest.(check bool) "packets flowed" true (Net.mean_delay_ms net > 0.0);
  Alcotest.(check (float 1e-9)) "no loss at low load" 0.0 (Net.loss_rate net)

let test_builder_capacity_function () =
  let model = routing_fixture () in
  let plan = Cisp_design.Capacity.plan model.Routing.inputs model.Routing.topology ~aggregate_gbps:10.0 in
  let f = Builder.provisioned_mw_gbps plan in
  List.iter
    (fun lp ->
      Alcotest.(check (float 1e-9)) "k^2 capacity"
        (Cisp_rf.Capacity.gbps_of_series lp.Cisp_design.Capacity.series)
        (f lp.Cisp_design.Capacity.link))
    plan.Cisp_design.Capacity.links

let suites =
  [
    ( "sim.engine",
      [
        Alcotest.test_case "event order" `Quick test_engine_order;
        Alcotest.test_case "until" `Quick test_engine_until;
        Alcotest.test_case "cascade" `Quick test_engine_cascade;
      ] );
    ( "sim.net",
      [
        Alcotest.test_case "delivery delay" `Quick test_net_delivery_delay;
        Alcotest.test_case "multihop" `Quick test_net_multihop;
        Alcotest.test_case "queueing delay" `Quick test_net_queueing_delay;
        Alcotest.test_case "drop when full" `Quick test_net_drop_when_full;
        Alcotest.test_case "broken route" `Quick test_net_broken_route;
        Alcotest.test_case "stats are read-only" `Quick test_net_stats_read_only;
        Alcotest.test_case "utilization" `Quick test_net_utilization;
        Alcotest.test_case "utilization guards" `Quick test_net_utilization_guards;
        Alcotest.test_case "telemetry flush" `Quick test_net_flush_telemetry;
      ] );
    ("sim.udp", [ Alcotest.test_case "poisson rate" `Quick test_udp_rate ]);
    ( "sim.tcp",
      [
        Alcotest.test_case "completes" `Quick test_tcp_completes;
        Alcotest.test_case "pacing smaller bursts" `Quick test_tcp_pacing_smaller_bursts;
        Alcotest.test_case "bandwidth sensitivity" `Quick test_tcp_faster_on_faster_path;
      ] );
    ( "sim.routing",
      [
        Alcotest.test_case "shortest path endpoints" `Quick test_routing_shortest_uses_mw;
        Alcotest.test_case "alternatives not faster" `Quick test_routing_alternatives_not_faster;
        Alcotest.test_case "zero demand" `Quick test_routing_zero_demand_no_paths;
        Alcotest.test_case "all commodities covered" `Quick test_routing_all_commodities_covered;
        Alcotest.test_case "link removal reroutes" `Quick test_routing_link_removal_reroutes;
        Alcotest.test_case "bounded stretch honors bound" `Quick
          test_routing_bounded_stretch_honors_bound;
      ] );
    ( "sim.builder",
      [
        Alcotest.test_case "end to end" `Quick test_builder_end_to_end;
        Alcotest.test_case "capacity function" `Quick test_builder_capacity_function;
      ] );
  ]

(* ---------- TCP loss recovery & media ---------- *)

let test_tcp_recovers_from_drops () =
  (* A buffer that can hold only 3 packets forces drops during slow
     start; the flow must still complete via timeout recovery. *)
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:3 in
  Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:2.0 ~buffer_bytes:max_int;
  Net.add_duplex net 1 2 ~gbps:0.01 ~delay_ms:2.0 ~buffer_bytes:4500;
  let fct = ref None in
  Tcp.start_flow net (Tcp.default_config ~ack_delay_s:0.004) ~flow_id:9 ~route:[| 0; 1; 2 |]
    ~size_bytes:60_000 ~at:0.0 ~on_complete:(fun t -> fct := Some t);
  Engine.run eng ~until:120.0;
  (match Net.link_stats net ~src:1 ~dst:2 with
  | Some ls -> Alcotest.(check bool) "drops happened" true (ls.Net.drops > 0)
  | None -> Alcotest.fail "link missing");
  match !fct with
  | Some t -> Alcotest.(check bool) "completed despite drops" true (t > 0.0)
  | None -> Alcotest.fail "flow wedged after drops"

let test_tcp_no_spurious_retransmit () =
  (* Lossless path: the watchdog must not interfere; bytes on the wire
     equal the transfer size. *)
  let eng = Engine.create () in
  let net = Net.create eng ~n_nodes:2 in
  Net.add_duplex net 0 1 ~gbps:1.0 ~delay_ms:2.0 ~buffer_bytes:max_int;
  Tcp.start_flow net (Tcp.default_config ~ack_delay_s:0.004) ~flow_id:3 ~route:[| 0; 1 |]
    ~size_bytes:150_000 ~at:0.0 ~on_complete:(fun _ -> ());
  Engine.run eng ~until:30.0;
  let s = Net.flow_stats net 3 in
  Alcotest.(check int) "exactly the packets needed" 100 s.Net.sent

let suites =
  suites
  @ [
      ( "sim.tcp_recovery",
        [
          Alcotest.test_case "recovers from drops" `Quick test_tcp_recovers_from_drops;
          Alcotest.test_case "no spurious retransmits" `Quick test_tcp_no_spurious_retransmit;
        ] );
    ]

(* ---------- Multipath, failover and scheme guarantees ---------- *)

let all_alive _ _ = true

let fixture_demands model gbps =
  Cisp_traffic.Matrix.scale_to_gbps model.Routing.inputs.Cisp_design.Inputs.traffic
    ~aggregate_gbps:gbps

(* Regression: the greedy schemes iterate commodities in demand order;
   a zero-demand ordered pair must never be assigned a route. *)
let test_minmax_skips_zero_demand_commodity () =
  let model = routing_fixture () in
  let demands = fixture_demands model 2.0 in
  demands.(0).(3) <- 0.0;
  let table = Routing.paths model Routing.Min_max_utilization ~demands_gbps:demands in
  Alcotest.(check bool) "zero-demand (0,3) unrouted" false (Hashtbl.mem table (0, 3));
  Alcotest.(check bool) "(3,0) still routed" true (Hashtbl.mem table (3, 0));
  Alcotest.(check int) "11 routed commodities" 11 (Hashtbl.length table)

(* A small random deployment: sites scattered around a base point, a
   ring topology for connectivity plus random chords. *)
let random_model seed =
  let rng = Cisp_util.Rng.create seed in
  let n = 6 in
  let base = Cisp_geo.Coord.make ~lat:40.0 ~lon:(-100.0) in
  let sites =
    Array.init n (fun i ->
        let c =
          Cisp_geo.Geodesy.destination base
            ~bearing_deg:(Cisp_util.Rng.float rng 360.0)
            ~distance_km:(Cisp_util.Rng.uniform rng 150.0 900.0)
        in
        Cisp_data.City.make (Printf.sprintf "S%d" i) ~lat:(Cisp_geo.Coord.lat c)
          ~lon:(Cisp_geo.Coord.lon c)
          ~population:(100_000 + Cisp_util.Rng.int rng 900_000))
  in
  let inputs =
    Cisp_design.Inputs.synthetic ~sites ~mw_stretch:1.05 ~mw_cost_per_km:0.02 ~fiber_stretch:1.9
      ~traffic:(Cisp_traffic.Matrix.population_product sites)
  in
  let links = ref [] in
  for i = 0 to n - 2 do
    links := (i, i + 1) :: !links
  done;
  links := (0, n - 1) :: !links;
  for _ = 1 to 3 do
    let u = Cisp_util.Rng.int rng n and v = Cisp_util.Rng.int rng n in
    let u, v = (min u v, max u v) in
    if u <> v && not (List.mem (u, v) !links) then links := (u, v) :: !links
  done;
  let topo = Cisp_design.Topology.of_links inputs !links in
  { Routing.inputs; topology = topo; mw_gbps = (fun _ -> 1.0); fiber_gbps = 100.0 }

(* The Bounded_stretch contract is per route, not just in the mean: on
   random topologies no commodity's route may exceed the bound times
   its own shortest latency. *)
let prop_bounded_stretch_per_route =
  QCheck.Test.make ~name:"bounded stretch bounds every single route" ~count:25 QCheck.small_int
    (fun seed ->
      let model = random_model (seed + 11) in
      let demands = fixture_demands model 5.0 in
      let bound = 1.25 in
      let shortest = Routing.paths model Routing.Shortest_path ~demands_gbps:demands in
      let table = Routing.paths model (Routing.Bounded_stretch bound) ~demands_gbps:demands in
      let ok = ref true in
      Hashtbl.iter
        (fun key route ->
          let lat = Routing.route_latency_km model ~mw_ok:all_alive route in
          let sp =
            Routing.route_latency_km model ~mw_ok:all_alive (Hashtbl.find shortest key)
          in
          if lat > (bound *. sp) +. 1e-6 then ok := false)
        table;
      !ok)

let test_multipath_table_structure () =
  let model = routing_fixture () in
  let demands = fixture_demands model 2.0 in
  let table = Routing.multipath_table model (Routing.K_disjoint_split 3) ~demands_gbps:demands in
  Alcotest.(check int) "all 12 commodities" 12 (Hashtbl.length table);
  Hashtbl.iter
    (fun (s, t) mp ->
      let k = Array.length mp.Routing.routes in
      Alcotest.(check bool) "1..3 routes" true (k >= 1 && k <= 3);
      Alcotest.(check int) "split per route" k (Array.length mp.Routing.split);
      check_float 1e-9 "split sums to 1" 1.0 (Array.fold_left ( +. ) 0.0 mp.Routing.split);
      let p = mp.Routing.routes.(0) in
      Alcotest.(check int) "starts at s" s p.Routing.nodes.(0);
      Alcotest.(check int) "ends at t" t p.Routing.nodes.(Array.length p.Routing.nodes - 1);
      check_float 1e-6 "primary latency consistent" p.Routing.latency_km
        (Routing.route_latency_km model ~mw_ok:all_alive p.Routing.nodes);
      Array.iter
        (fun q ->
          Alcotest.(check bool) "primary is the shortest route" true
            (q.Routing.latency_km >= p.Routing.latency_km -. 1e-9))
        mp.Routing.routes)
    table

let test_multipath_invalid_k () =
  let model = routing_fixture () in
  let demands = fixture_demands model 1.0 in
  Alcotest.check_raises "k = 0 rejected" (Invalid_argument "Routing.multipath_table: k <= 0")
    (fun () ->
      ignore (Routing.multipath_table model (Routing.K_disjoint_split 0) ~demands_gbps:demands))

let route_respects ~mw_ok (p : Routing.mp_path) =
  let ok = ref true in
  Array.iteri
    (fun h medium ->
      match medium with
      | Routing.Mw -> if not (mw_ok p.Routing.nodes.(h) p.Routing.nodes.(h + 1)) then ok := false
      | Routing.Fiber -> ())
    p.Routing.media;
  !ok

let test_failover_activates_backup () =
  let model = routing_fixture () in
  let demands = fixture_demands model 2.0 in
  let table =
    Routing.multipath_table model (Routing.K_disjoint_failover 3) ~demands_gbps:demands
  in
  let mp = Hashtbl.find table (0, 2) in
  Alcotest.(check bool) "has a backup" true (Array.length mp.Routing.routes >= 2);
  check_float 1e-9 "all mass on the primary" 1.0 mp.Routing.split.(0);
  (* Fair weather: the primary carries the commodity. *)
  (match Routing.select_routes mp ~mw_ok:all_alive with
  | [||] -> Alcotest.fail "no route in fair weather"
  | sel ->
    let p, w = sel.(0) in
    check_float 1e-9 "primary weight 1" 1.0 w;
    check_float 1e-9 "primary route" mp.Routing.routes.(0).Routing.latency_km p.Routing.latency_km);
  (* Kill one MW hop of the primary: the first surviving backup takes
     the full load, without touching the table. *)
  let prim = mp.Routing.routes.(0) in
  let dead = ref None in
  Array.iteri
    (fun h medium ->
      match medium with
      | Routing.Mw -> if !dead = None then dead := Some (prim.Routing.nodes.(h), prim.Routing.nodes.(h + 1))
      | Routing.Fiber -> ())
    prim.Routing.media;
  match !dead with
  | None -> Alcotest.fail "primary uses no MW hop"
  | Some (a, b) ->
    let mw_ok u v = not ((u = a && v = b) || (u = b && v = a)) in
    let sel = Routing.select_routes mp ~mw_ok in
    Alcotest.(check bool) "a backup survives" true (Array.length sel > 0);
    Array.iter
      (fun (p, _) ->
        Alcotest.(check bool) "survivor avoids the dead link" true (route_respects ~mw_ok p))
      sel;
    check_float 1e-9 "full mass on first survivor" 1.0 (snd sel.(0))

let test_split_renormalizes_over_survivors () =
  let model = routing_fixture () in
  let demands = fixture_demands model 2.0 in
  let table = Routing.multipath_table model (Routing.K_disjoint_split 3) ~demands_gbps:demands in
  let mp = Hashtbl.find table (0, 2) in
  Alcotest.(check bool) "multiple routes" true (Array.length mp.Routing.routes >= 2);
  (* All MW down: only pure-fiber routes survive, weights renormalized. *)
  let none_alive _ _ = false in
  let sel = Routing.select_routes mp ~mw_ok:none_alive in
  Array.iter
    (fun ((p : Routing.mp_path), _) ->
      Alcotest.(check bool) "survivors are pure fiber" true
        (Array.for_all (fun m -> match m with Routing.Fiber -> true | Routing.Mw -> false)
           p.Routing.media))
    sel;
  if Array.length sel > 0 then
    check_float 1e-9 "weights renormalized" 1.0
      (Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 sel)

let test_multipath_failover_latency_matches_shortest () =
  let model = routing_fixture () in
  let demands = fixture_demands model 2.0 in
  let failover =
    Routing.multipath_table model (Routing.K_disjoint_failover 2) ~demands_gbps:demands
  in
  let sp = Routing.paths model Routing.Shortest_path ~demands_gbps:demands in
  check_float 1e-6 "failover fair-weather latency = shortest-path"
    (Routing.mean_route_latency_ms model sp ~demands_gbps:demands)
    (Routing.multipath_mean_latency_ms failover ~demands_gbps:demands)

let suites =
  suites
  @ [
      ( "sim.multipath",
        [
          Alcotest.test_case "min-max skips zero demand" `Quick
            test_minmax_skips_zero_demand_commodity;
          Alcotest.test_case "table structure" `Quick test_multipath_table_structure;
          Alcotest.test_case "invalid k" `Quick test_multipath_invalid_k;
          Alcotest.test_case "failover activates backup" `Quick test_failover_activates_backup;
          Alcotest.test_case "split renormalizes" `Quick test_split_renormalizes_over_survivors;
          Alcotest.test_case "failover latency = shortest" `Quick
            test_multipath_failover_latency_matches_shortest;
          QCheck_alcotest.to_alcotest prop_bounded_stretch_per_route;
        ] );
    ]
