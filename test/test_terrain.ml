open Cisp_terrain

let coord = Cisp_geo.Coord.make
let check_float eps = Alcotest.(check (float eps))

(* ---------- Noise ---------- *)

let test_noise_deterministic () =
  let a = Noise.value ~seed:1 3.7 (-2.2) in
  let b = Noise.value ~seed:1 3.7 (-2.2) in
  check_float 0.0 "same inputs same output" a b

let test_noise_seed_sensitivity () =
  let a = Noise.value ~seed:1 3.7 2.2 in
  let b = Noise.value ~seed:2 3.7 2.2 in
  Alcotest.(check bool) "different seeds differ" true (a <> b)

let test_noise_range () =
  let rng = Cisp_util.Rng.create 5 in
  for _ = 1 to 2000 do
    let x = Cisp_util.Rng.uniform rng (-50.0) 50.0 in
    let y = Cisp_util.Rng.uniform rng (-50.0) 50.0 in
    let v = Noise.value ~seed:3 x y in
    Alcotest.(check bool) "in [-1,1]" true (v >= -1.0 && v <= 1.0);
    let f = Noise.fbm ~seed:3 ~octaves:5 ~lacunarity:2.0 ~gain:0.5 x y in
    Alcotest.(check bool) "fbm bounded" true (f >= -1.2 && f <= 1.2);
    let r = Noise.ridged ~seed:3 ~octaves:4 x y in
    Alcotest.(check bool) "ridged in [0,1]" true (r >= 0.0 && r <= 1.0)
  done

let test_noise_continuity () =
  (* Small input change -> small output change. *)
  let a = Noise.value ~seed:7 10.0 10.0 in
  let b = Noise.value ~seed:7 10.0001 10.0 in
  Alcotest.(check bool) "continuous" true (Float.abs (a -. b) < 0.01)

let test_fbm_matches_value_spec () =
  (* [Noise.fbm] hand-inlines the lattice hash and bilinear blend for
     speed; [Noise.value] remains the single-octave specification.
     The two must agree bit-for-bit. *)
  let spec ~seed ~octaves ~lacunarity ~gain x y =
    let rec loop i freq amp sum norm =
      if i >= octaves then sum /. norm
      else begin
        let v = Noise.value ~seed:(seed + i) (x *. freq) (y *. freq) in
        loop (i + 1) (freq *. lacunarity) (amp *. gain) (sum +. (amp *. v)) (norm +. amp)
      end
    in
    loop 0 1.0 1.0 0.0 0.0
  in
  let rng = Cisp_util.Rng.create 21 in
  for _ = 1 to 500 do
    let x = Cisp_util.Rng.uniform rng (-400.0) 400.0 in
    let y = Cisp_util.Rng.uniform rng (-200.0) 200.0 in
    let octaves = 1 + Cisp_util.Rng.int rng 6 in
    let fast = Noise.fbm ~seed:9 ~octaves ~lacunarity:2.1 ~gain:0.5 x y in
    let slow = spec ~seed:9 ~octaves ~lacunarity:2.1 ~gain:0.5 x y in
    Alcotest.(check int64)
      (Printf.sprintf "fbm(%g, %g) octaves=%d" x y octaves)
      (Int64.bits_of_float slow) (Int64.bits_of_float fast)
  done

(* ---------- Dem ---------- *)

let us = Dem.create Dem.Us_continental

let test_dem_deterministic () =
  let p = coord ~lat:39.0 ~lon:(-98.0) in
  let dem2 = Dem.create Dem.Us_continental in
  check_float 0.0 "same seed same elevation" (Dem.elevation_m us p) (Dem.elevation_m dem2 p)

let test_dem_nonnegative () =
  let rng = Cisp_util.Rng.create 6 in
  for _ = 1 to 500 do
    let p =
      coord
        ~lat:(Cisp_util.Rng.uniform rng 25.0 49.0)
        ~lon:(Cisp_util.Rng.uniform rng (-124.0) (-67.0))
    in
    Alcotest.(check bool) "elevation >= 0" true (Dem.elevation_m us p >= 0.0);
    Alcotest.(check bool) "clutter >= 0" true (Dem.clutter_m us p >= 0.0);
    Alcotest.(check bool) "surface >= elevation" true
      (Dem.surface_m us p >= Dem.elevation_m us p)
  done

let test_dem_mountains_higher_than_plains () =
  let rockies = coord ~lat:39.5 ~lon:(-106.5) in
  let kansas = coord ~lat:38.5 ~lon:(-98.0) in
  let e_r = Dem.elevation_m us rockies and e_k = Dem.elevation_m us kansas in
  Alcotest.(check bool)
    (Printf.sprintf "rockies (%.0f) > kansas (%.0f)" e_r e_k)
    true (e_r > e_k +. 500.0)

let test_dem_west_ramp () =
  let denver = coord ~lat:39.74 ~lon:(-104.98) in
  let stlouis = coord ~lat:38.63 ~lon:(-90.20) in
  Alcotest.(check bool) "denver above st louis" true
    (Dem.elevation_m us denver > Dem.elevation_m us stlouis +. 400.0)

let test_dem_profile () =
  let a = coord ~lat:39.0 ~lon:(-100.0) and b = coord ~lat:39.0 ~lon:(-99.0) in
  let prof = Dem.profile us a b ~step_km:1.0 in
  Alcotest.(check bool) "enough samples" true (Array.length prof >= 80);
  let d0, _ = prof.(0) in
  let dn, _ = prof.(Array.length prof - 1) in
  check_float 1e-6 "starts at 0" 0.0 d0;
  check_float 0.5 "ends at distance" (Cisp_geo.Geodesy.distance_km a b) dn;
  (* distances strictly increasing *)
  let mono = ref true in
  for i = 0 to Array.length prof - 2 do
    if fst prof.(i) >= fst prof.(i + 1) then mono := false
  done;
  Alcotest.(check bool) "monotone distances" true !mono

let test_dem_ruggedness () =
  let rockies = coord ~lat:39.5 ~lon:(-106.5) in
  let kansas = coord ~lat:38.5 ~lon:(-98.0) in
  Alcotest.(check bool) "rockies more rugged" true
    (Dem.ruggedness us rockies > 3.0 *. Dem.ruggedness us kansas)

let test_dem_flat_region () =
  let flat = Dem.create ~seed:9 Dem.Flat in
  let rng = Cisp_util.Rng.create 10 in
  for _ = 1 to 200 do
    let p =
      coord
        ~lat:(Cisp_util.Rng.uniform rng 30.0 45.0)
        ~lon:(Cisp_util.Rng.uniform rng (-110.0) (-80.0))
    in
    let e = Dem.elevation_m flat p in
    Alcotest.(check bool) "flat stays low" true (e >= 0.0 && e < 300.0)
  done

(* ---------- Dem_cache ---------- *)

let test_cache_consistency () =
  let cache = Dem_cache.create us in
  let p = coord ~lat:40.0 ~lon:(-95.0) in
  let v1 = Dem_cache.surface_m cache p in
  let v2 = Dem_cache.surface_m cache p in
  check_float 0.0 "stable across queries" v1 v2;
  let hits, misses = Dem_cache.stats cache in
  Alcotest.(check int) "one hit" 1 hits;
  Alcotest.(check int) "one miss" 1 misses

let test_cache_accuracy () =
  (* Cached value equals the DEM within the quantization cell's relief. *)
  let cache = Dem_cache.create us in
  let rng = Cisp_util.Rng.create 11 in
  for _ = 1 to 200 do
    let p =
      coord
        ~lat:(Cisp_util.Rng.uniform rng 30.0 45.0)
        ~lon:(Cisp_util.Rng.uniform rng (-110.0) (-80.0))
    in
    let cached = Dem_cache.surface_m cache p in
    let exact = Dem.surface_m us p in
    Alcotest.(check bool) "within 60m" true (Float.abs (cached -. exact) < 60.0)
  done

let test_cache_ground_vs_surface () =
  let cache = Dem_cache.create us in
  let p = coord ~lat:41.0 ~lon:(-93.0) in
  Alcotest.(check bool) "surface >= ground" true
    (Dem_cache.surface_m cache p >= Dem_cache.elevation_m cache p)

let random_point rng =
  coord
    ~lat:(Cisp_util.Rng.uniform rng 30.0 45.0)
    ~lon:(Cisp_util.Rng.uniform rng (-110.0) (-80.0))

let test_cache_hit_miss_counters () =
  let cache = Dem_cache.create us in
  (* 0.1 degrees apart >> the ~0.0036 degree cell, so all distinct. *)
  let pts = List.init 50 (fun i -> coord ~lat:(32.0 +. (0.1 *. float_of_int i)) ~lon:(-101.3)) in
  List.iter (fun p -> ignore (Dem_cache.surface_m cache p)) pts;
  Alcotest.(check (pair int int)) "first pass all misses" (0, 50) (Dem_cache.stats cache);
  List.iter (fun p -> ignore (Dem_cache.surface_m cache p)) pts;
  Alcotest.(check (pair int int)) "second pass all hits" (50, 50) (Dem_cache.stats cache);
  (* A different raw query landing in an already-computed cell is a hit. *)
  ignore (Dem_cache.surface_m cache (coord ~lat:32.0001 ~lon:(-101.3001)));
  Alcotest.(check (pair int int)) "same cell, different point" (51, 50) (Dem_cache.stats cache)

let test_cache_cell_center_purity () =
  (* Every value the cache returns is the DEM evaluated at the cell's
     own center ([snap]), never at the query point that happened to
     touch the cell first. *)
  let cache = Dem_cache.create us in
  let rng = Cisp_util.Rng.create 32 in
  for _ = 1 to 200 do
    let p = random_point rng in
    let c = Dem_cache.snap p in
    Alcotest.(check int64) "surface = surface at cell center"
      (Int64.bits_of_float (Dem.surface_m us c))
      (Int64.bits_of_float (Dem_cache.surface_m cache p));
    Alcotest.(check int64) "ground = elevation at cell center"
      (Int64.bits_of_float (Dem.elevation_m us c))
      (Int64.bits_of_float (Dem_cache.elevation_m cache p))
  done

let test_cache_order_independence () =
  (* Shared-store contents are a pure function of the set of cells
     touched — query order must not matter. *)
  let rng = Cisp_util.Rng.create 33 in
  let pts = List.init 300 (fun _ -> random_point rng) in
  let fill order =
    let cache = Dem_cache.create us in
    List.iter (fun p -> ignore (Dem_cache.surface_m cache p)) order;
    Dem_cache.surface_cells cache
  in
  Alcotest.(check bool) "forward and reverse fills agree" true
    (fill pts = fill (List.rev pts))

let test_cache_width_invariance () =
  (* The tentpole determinism claim at the cache level: a parallel
     sweep leaves bit-identical shared-store contents at any domain
     count.  Each width gets a fresh cache; slight overlap between
     indices makes domains race on common cells. *)
  let sweep jobs =
    let pool = Cisp_util.Pool.create ~jobs in
    Fun.protect
      ~finally:(fun () -> Cisp_util.Pool.shutdown pool)
      (fun () ->
        let cache = Dem_cache.create us in
        Cisp_util.Pool.parallel_for pool ~n:2000 (fun i ->
            let f = float_of_int (i mod 1900) /. 1900.0 in
            let lat = 30.0 +. (15.0 *. f) in
            let lon = -110.0 +. (30.0 *. Float.rem (f *. 37.0) 1.0) in
            ignore (Dem_cache.surface_m_ll cache ~lat ~lon);
            ignore (Dem_cache.elevation_m_ll cache ~lat ~lon));
        (Dem_cache.surface_cells cache, Dem_cache.ground_cells cache))
  in
  let s1, g1 = sweep 1 in
  Alcotest.(check bool) "cells non-empty" true (s1 <> []);
  List.iter
    (fun jobs ->
      let sw, gw = sweep jobs in
      Alcotest.(check bool)
        (Printf.sprintf "surface cells identical, jobs=1 vs %d" jobs)
        true (s1 = sw);
      Alcotest.(check bool)
        (Printf.sprintf "ground cells identical, jobs=1 vs %d" jobs)
        true (g1 = gw))
    [ 2; 8 ]

let test_cache_telemetry_stress () =
  (* 8 domains race the shared-L2 miss path while hammering telemetry:
     counter totals stay exact, cache stats stay coherent (every query
     lands in hits or misses), and the published store matches a
     sequential fill bit for bit. *)
  let n = 4096 in
  let sweep jobs =
    Cisp_util.Telemetry.reset ();
    Cisp_util.Telemetry.enable_metrics ();
    Fun.protect ~finally:Cisp_util.Telemetry.reset (fun () ->
        let pool = Cisp_util.Pool.create ~jobs in
        Fun.protect
          ~finally:(fun () -> Cisp_util.Pool.shutdown pool)
          (fun () ->
            let cache = Dem_cache.create us in
            Cisp_util.Pool.parallel_for pool ~n (fun i ->
                let f = float_of_int (i mod 997) /. 997.0 in
                let lat = 30.0 +. (15.0 *. f) in
                let lon = -110.0 +. (30.0 *. Float.rem (f *. 37.0) 1.0) in
                ignore (Dem_cache.surface_m_ll cache ~lat ~lon);
                Cisp_util.Telemetry.incr "stress.queries";
                Cisp_util.Telemetry.observe "stress.lat_deg" lat);
            let hits, misses = Dem_cache.stats cache in
            ( hits + misses,
              Cisp_util.Telemetry.counter "stress.queries",
              Array.length (Cisp_util.Telemetry.samples "stress.lat_deg"),
              Dem_cache.surface_cells cache )))
  in
  let q1, c1, s1, cells1 = sweep 1 in
  let q8, c8, s8, cells8 = sweep 8 in
  Alcotest.(check int) "sequential stats cover every query" n q1;
  Alcotest.(check int) "parallel stats cover every query" n q8;
  Alcotest.(check int) "counter exact at jobs=1" n c1;
  Alcotest.(check int) "counter exact at jobs=8" n c8;
  Alcotest.(check int) "every observation lands at jobs=1" n s1;
  Alcotest.(check int) "every observation lands at jobs=8" n s8;
  Alcotest.(check bool) "store contents bit-identical to sequential" true
    (cells1 = cells8)

let suites =
  [
    ( "terrain.noise",
      [
        Alcotest.test_case "deterministic" `Quick test_noise_deterministic;
        Alcotest.test_case "seed sensitivity" `Quick test_noise_seed_sensitivity;
        Alcotest.test_case "range" `Quick test_noise_range;
        Alcotest.test_case "continuity" `Quick test_noise_continuity;
        Alcotest.test_case "fbm matches value spec" `Quick test_fbm_matches_value_spec;
      ] );
    ( "terrain.dem",
      [
        Alcotest.test_case "deterministic" `Quick test_dem_deterministic;
        Alcotest.test_case "nonnegative" `Quick test_dem_nonnegative;
        Alcotest.test_case "mountains higher" `Quick test_dem_mountains_higher_than_plains;
        Alcotest.test_case "west ramp" `Quick test_dem_west_ramp;
        Alcotest.test_case "profile" `Quick test_dem_profile;
        Alcotest.test_case "ruggedness" `Quick test_dem_ruggedness;
        Alcotest.test_case "flat region" `Quick test_dem_flat_region;
      ] );
    ( "terrain.cache",
      [
        Alcotest.test_case "consistency" `Quick test_cache_consistency;
        Alcotest.test_case "accuracy" `Quick test_cache_accuracy;
        Alcotest.test_case "ground vs surface" `Quick test_cache_ground_vs_surface;
        Alcotest.test_case "hit/miss counters" `Quick test_cache_hit_miss_counters;
        Alcotest.test_case "cell-center purity" `Quick test_cache_cell_center_purity;
        Alcotest.test_case "order independence" `Quick test_cache_order_independence;
        Alcotest.test_case "width invariance" `Slow test_cache_width_invariance;
        Alcotest.test_case "telemetry stress at jobs 8" `Slow
          test_cache_telemetry_stress;
      ] );
  ]
