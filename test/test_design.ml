open Cisp_design

let check_float eps = Alcotest.(check (float eps))

(* Synthetic 6-site ring instance: every pair has MW at 1.02x geodesic,
   fiber at 1.9x, cost proportional to distance. *)
let mk_sites n =
  Array.init n (fun i ->
      let c =
        Cisp_geo.Geodesy.destination
          (Cisp_geo.Coord.make ~lat:39.0 ~lon:(-95.0))
          ~bearing_deg:(float_of_int i *. 360.0 /. float_of_int n)
          ~distance_km:(250.0 +. (60.0 *. float_of_int (i mod 3)))
      in
      Cisp_data.City.make (Printf.sprintf "S%d" i)
        ~lat:(Cisp_geo.Coord.lat c) ~lon:(Cisp_geo.Coord.lon c)
        ~population:((i + 1) * 100_000))

let mk_inputs ?(n = 6) () =
  let sites = mk_sites n in
  Inputs.synthetic ~sites ~mw_stretch:1.02 ~mw_cost_per_km:0.02 ~fiber_stretch:1.9
    ~traffic:(Cisp_traffic.Matrix.population_product sites)

let inputs = mk_inputs ()

let test_inputs_validate () =
  Alcotest.(check bool) "valid" true (Inputs.validate inputs = Ok ());
  Alcotest.(check int) "n sites" 6 (Inputs.n_sites inputs)

let test_inputs_restrict () =
  let sub = Inputs.restrict inputs ~indices:[| 0; 2; 4 |] in
  Alcotest.(check int) "restricted" 3 (Inputs.n_sites sub);
  check_float 1e-9 "geodesic preserved" inputs.Inputs.geodesic_km.(0).(2) sub.Inputs.geodesic_km.(0).(1);
  check_float 1e-9 "traffic normalized" 1.0 (Cisp_traffic.Matrix.total sub.Inputs.traffic)

(* ---------- Topology ---------- *)

let test_topology_empty_is_fiber () =
  let t = Topology.empty inputs in
  check_float 1e-9 "empty topology = fiber stretch" 1.9 (Topology.stretch_of t)

let test_topology_add_remove () =
  let t = Topology.of_links inputs [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "built" true (Topology.is_built t 0 1);
  Alcotest.(check bool) "order-insensitive" true (Topology.is_built t 1 0);
  Alcotest.(check bool) "not built" false (Topology.is_built t 0 2);
  let t2 = Topology.remove t (1, 0) in
  Alcotest.(check bool) "removed" false (Topology.is_built t2 0 1);
  Alcotest.(check int) "cost restored" (Topology.link_cost inputs 2 3) t2.Topology.cost;
  (* add is idempotent *)
  let t3 = Topology.add t (0, 1) in
  Alcotest.(check int) "idempotent add" t.Topology.cost t3.Topology.cost

let test_topology_full_mesh_stretch () =
  let all = ref [] in
  for i = 0 to 5 do
    for j = i + 1 to 5 do
      all := (i, j) :: !all
    done
  done;
  let t = Topology.of_links inputs !all in
  check_float 1e-9 "all links -> mw stretch" 1.02 (Topology.stretch_of t)

let test_distances_incremental_exact () =
  (* Incremental closure equals recomputing from scratch. *)
  let base = Topology.fiber_baseline inputs in
  let d1 = Topology.distances_incremental inputs base (0, 3) in
  let t = Topology.of_links inputs [ (0, 3) ] in
  let d2 = Topology.distances t in
  for s = 0 to 5 do
    for u = 0 to 5 do
      check_float 1e-9 "metric equal" d2.(s).(u) d1.(s).(u)
    done
  done

let test_stretch_weighted () =
  (* Concentrating traffic on a served pair drops the mean stretch to
     that pair's stretch. *)
  let n = 6 in
  let traffic = Array.make_matrix n n 0.0 in
  traffic.(0).(1) <- 0.5;
  traffic.(1).(0) <- 0.5;
  let inp = { inputs with Inputs.traffic } in
  let t = Topology.of_links inp [ (0, 1) ] in
  check_float 1e-9 "pair stretch" 1.02 (Topology.stretch_of t)

(* ---------- Greedy ---------- *)

let test_greedy_respects_budget () =
  let budget = 40 in
  let t = Greedy.design inputs ~budget in
  Alcotest.(check bool) "within budget" true (t.Topology.cost <= budget);
  Alcotest.(check bool) "built something" true (t.Topology.built <> [])

let test_greedy_improves_monotonically () =
  let s0 = Topology.stretch_of (Topology.empty inputs) in
  let s1 = Topology.stretch_of (Greedy.design inputs ~budget:20) in
  let s2 = Topology.stretch_of (Greedy.design inputs ~budget:60) in
  Alcotest.(check bool) "20 improves over empty" true (s1 < s0);
  Alcotest.(check bool) "60 improves over 20" true (s2 <= s1 +. 1e-12)

let test_greedy_candidates_beneficial () =
  List.iter
    (fun (i, j) ->
      Alcotest.(check bool) "mw beats fiber" true
        (inputs.Inputs.mw_km.(i).(j) < inputs.Inputs.fiber_km.(i).(j)))
    (Greedy.candidates inputs)

let test_greedy_zero_budget () =
  let t = Greedy.design inputs ~budget:0 in
  Alcotest.(check (list (pair int int))) "nothing built" [] t.Topology.built

let test_greedy_ordered_prefix () =
  let topo, order = Greedy.design_ordered inputs ~budget:60 in
  Alcotest.(check int) "order covers built" (List.length topo.Topology.built)
    (List.length order);
  List.iter
    (fun pair -> Alcotest.(check bool) "ordered link built" true (List.mem pair topo.Topology.built))
    order

(* ---------- ILP vs greedy vs brute force ---------- *)

let brute_force_best inputs ~budget ~candidates =
  let cands = Array.of_list candidates in
  let m = Array.length cands in
  let best = ref (Topology.stretch_of (Topology.empty inputs)) in
  for mask = 0 to (1 lsl m) - 1 do
    let links = ref [] in
    for b = 0 to m - 1 do
      if mask land (1 lsl b) <> 0 then links := cands.(b) :: !links
    done;
    let t = Topology.of_links inputs !links in
    if t.Topology.cost <= budget then begin
      let s = Topology.stretch_of t in
      if s < !best then best := s
    end
  done;
  !best

let test_ilp_matches_brute_force () =
  let inp = mk_inputs ~n:5 () in
  let budget = 30 in
  let candidates = Greedy.candidates inp in
  (* keep brute force tractable *)
  let candidates = List.filteri (fun i _ -> i < 8) candidates in
  let brute = brute_force_best inp ~budget ~candidates in
  let topo, stats = Ilp.design inp ~budget ~candidates in
  Alcotest.(check bool) "ilp finished" true (stats.Ilp.milp_status = `Optimal);
  check_float 1e-6 "ilp = brute force" brute (Topology.stretch_of topo)

let test_heuristic_matches_ilp () =
  (* The paper's Fig 2(b) claim on a small instance. *)
  let inp = mk_inputs ~n:6 () in
  let budget = 40 in
  let candidates = Greedy.candidates inp in
  let ilp_topo, stats = Ilp.design inp ~budget ~candidates in
  Alcotest.(check bool) "optimal" true (stats.Ilp.milp_status = `Optimal);
  let heur = Scenario.design inp ~budget in
  check_float 0.005 "heuristic ~ ilp" (Topology.stretch_of ilp_topo) (Topology.stretch_of heur)

let test_ilp_respects_budget () =
  let inp = mk_inputs ~n:5 () in
  let budget = 25 in
  let topo, _ = Ilp.design inp ~budget ~candidates:(Greedy.candidates inp) in
  Alcotest.(check bool) "within budget" true (topo.Topology.cost <= budget)

let test_lp_rounding_feasible () =
  let inp = mk_inputs ~n:5 () in
  let budget = 25 in
  match Lp_rounding.design inp ~budget ~candidates:(Greedy.candidates inp) with
  | None -> Alcotest.fail "relaxation should be feasible"
  | Some t -> Alcotest.(check bool) "within budget" true (t.Topology.cost <= budget)

(* ---------- Local search ---------- *)

let test_local_search_never_worse () =
  let budget = 50 in
  let seed = Greedy.design inputs ~budget in
  let improved =
    Local_search.improve inputs ~budget ~candidates:(Greedy.candidates inputs) seed
  in
  Alcotest.(check bool) "not worse" true
    (Topology.stretch_of improved <= Topology.stretch_of seed +. 1e-9);
  Alcotest.(check bool) "within budget" true (improved.Topology.cost <= budget)

let test_local_search_fills_budget () =
  (* Start from an empty topology: additions alone must engage. *)
  let budget = 40 in
  let improved =
    Local_search.improve inputs ~budget ~candidates:(Greedy.candidates inputs)
      (Topology.empty inputs)
  in
  Alcotest.(check bool) "built links" true (improved.Topology.built <> [])

(* ---------- Capacity & cost ---------- *)

let test_route_loads_conserve () =
  let t = Greedy.design inputs ~budget:60 in
  let loads = Capacity.route_loads inputs t ~aggregate_gbps:100.0 in
  List.iter
    (fun ((i, j), load) ->
      Alcotest.(check bool) "load nonnegative" true (load >= 0.0);
      Alcotest.(check bool) "link built" true (Topology.is_built t i j))
    loads

let test_capacity_plan_covers_demand () =
  let t = Greedy.design inputs ~budget:60 in
  let plan = Capacity.plan inputs t ~aggregate_gbps:50.0 in
  List.iter
    (fun lp ->
      Alcotest.(check bool) "series capacity >= load" true
        (Cisp_rf.Capacity.gbps_of_series lp.Capacity.series >= lp.Capacity.load_gbps -. 1e-6))
    plan.Capacity.links;
  Alcotest.(check bool) "hops counted" true (plan.Capacity.hops_total > 0);
  (* No spare info: every extra series charges new towers. *)
  let hops_with_extra =
    List.fold_left (fun acc lp -> if lp.Capacity.series > 1 then acc + lp.Capacity.hops else acc) 0
      plan.Capacity.links
  in
  let classed =
    List.fold_left (fun acc (cls, n) -> if cls > 0 then acc + n else acc) 0 plan.Capacity.hop_classes
  in
  Alcotest.(check int) "every extra-series hop classed > 0" hops_with_extra classed

let test_capacity_spare_reduces_new_towers () =
  let t = Greedy.design inputs ~budget:60 in
  let no_spare = Capacity.plan inputs t ~aggregate_gbps:200.0 in
  let all_spare = Capacity.plan ~spare_series_at_hop:(fun _ _ -> 1000) inputs t ~aggregate_gbps:200.0 in
  Alcotest.(check bool) "spare towers reduce new builds" true
    (all_spare.Capacity.new_towers <= no_spare.Capacity.new_towers);
  Alcotest.(check int) "full spare -> zero new" 0 all_spare.Capacity.new_towers

let test_cost_model () =
  let c = Cost.default in
  check_float 1e-6 "capex" (2.0 *. 150_000.0 +. 3.0 *. 100_000.0)
    (Cost.capex_usd c ~radios:2 ~new_towers:3);
  check_float 1e-6 "opex 5y" (10.0 *. 40_000.0 *. 5.0) (Cost.opex_usd c ~rented_towers:10);
  (* cost per GB: $1e9 over 100 Gbps x 5 years *)
  let gb = 100.0 /. 8.0 *. 5.0 *. Cisp_util.Units.seconds_per_year in
  check_float 1e-9 "per gb" (1e9 /. gb) (Cost.cost_per_gb c ~total_usd:1e9 ~aggregate_gbps:100.0)

let test_cost_per_gb_decreases_with_rate () =
  let t = Greedy.design inputs ~budget:60 in
  let cpg rate =
    let plan = Capacity.plan inputs t ~aggregate_gbps:rate in
    Capacity.cost_per_gb Cost.default plan ~aggregate_gbps:rate
  in
  Alcotest.(check bool) "economies of scale" true (cpg 400.0 < cpg 10.0)

let suites =
  [
    ( "design.inputs",
      [
        Alcotest.test_case "validate" `Quick test_inputs_validate;
        Alcotest.test_case "restrict" `Quick test_inputs_restrict;
      ] );
    ( "design.topology",
      [
        Alcotest.test_case "empty = fiber" `Quick test_topology_empty_is_fiber;
        Alcotest.test_case "add remove" `Quick test_topology_add_remove;
        Alcotest.test_case "full mesh stretch" `Quick test_topology_full_mesh_stretch;
        Alcotest.test_case "incremental metric exact" `Quick test_distances_incremental_exact;
        Alcotest.test_case "traffic weighting" `Quick test_stretch_weighted;
      ] );
    ( "design.greedy",
      [
        Alcotest.test_case "respects budget" `Quick test_greedy_respects_budget;
        Alcotest.test_case "monotone improvement" `Quick test_greedy_improves_monotonically;
        Alcotest.test_case "candidates beneficial" `Quick test_greedy_candidates_beneficial;
        Alcotest.test_case "zero budget" `Quick test_greedy_zero_budget;
        Alcotest.test_case "ordered prefix" `Quick test_greedy_ordered_prefix;
      ] );
    ( "design.ilp",
      [
        Alcotest.test_case "matches brute force" `Slow test_ilp_matches_brute_force;
        Alcotest.test_case "heuristic matches ilp" `Slow test_heuristic_matches_ilp;
        Alcotest.test_case "respects budget" `Quick test_ilp_respects_budget;
        Alcotest.test_case "lp rounding feasible" `Quick test_lp_rounding_feasible;
      ] );
    ( "design.local_search",
      [
        Alcotest.test_case "never worse" `Quick test_local_search_never_worse;
        Alcotest.test_case "fills budget" `Quick test_local_search_fills_budget;
      ] );
    ( "design.capacity",
      [
        Alcotest.test_case "route loads" `Quick test_route_loads_conserve;
        Alcotest.test_case "plan covers demand" `Quick test_capacity_plan_covers_demand;
        Alcotest.test_case "spare reduces new towers" `Quick test_capacity_spare_reduces_new_towers;
        Alcotest.test_case "cost model" `Quick test_cost_model;
        Alcotest.test_case "economies of scale" `Quick test_cost_per_gb_decreases_with_rate;
      ] );
  ]

(* ---------- deeper properties ---------- *)

let prop_incremental_order_independent =
  QCheck.Test.make ~name:"metric closure independent of link addition order" ~count:40
    QCheck.small_int
    (fun seed ->
      let rng = Cisp_util.Rng.create seed in
      let pairs = Array.of_list (Greedy.candidates inputs) in
      Cisp_util.Rng.shuffle rng pairs;
      let chosen = Array.to_list (Array.sub pairs 0 (min 5 (Array.length pairs))) in
      let t1 = Topology.of_links inputs chosen in
      let t2 = Topology.of_links inputs (List.rev chosen) in
      let d1 = Topology.distances t1 and d2 = Topology.distances t2 in
      let ok = ref true in
      for s = 0 to 5 do
        for u = 0 to 5 do
          if Float.abs (d1.(s).(u) -. d2.(s).(u)) > 1e-9 then ok := false
        done
      done;
      !ok)

let prop_greedy_never_exceeds_budget =
  QCheck.Test.make ~name:"greedy within arbitrary budgets" ~count:60 QCheck.(int_range 0 300)
    (fun budget ->
      let t = Greedy.design inputs ~budget in
      t.Topology.cost <= budget)

let prop_stretch_at_least_one =
  QCheck.Test.make ~name:"stretch >= 1 for any link subset" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Cisp_util.Rng.create seed in
      let pairs = Array.of_list (Greedy.candidates inputs) in
      Cisp_util.Rng.shuffle rng pairs;
      let k = Cisp_util.Rng.int rng (Array.length pairs + 1) in
      let t = Topology.of_links inputs (Array.to_list (Array.sub pairs 0 k)) in
      Topology.stretch_of t >= 1.0 -. 1e-9)

let prop_more_links_never_hurt =
  QCheck.Test.make ~name:"adding a link never increases stretch" ~count:60 QCheck.small_int
    (fun seed ->
      let rng = Cisp_util.Rng.create seed in
      let pairs = Array.of_list (Greedy.candidates inputs) in
      Cisp_util.Rng.shuffle rng pairs;
      let k = Cisp_util.Rng.int rng (Array.length pairs) in
      let base_links = Array.to_list (Array.sub pairs 0 k) in
      let t = Topology.of_links inputs base_links in
      let t' = Topology.add t pairs.(k) in
      Topology.stretch_of t' <= Topology.stretch_of t +. 1e-9)

let deep_suite =
  ( "design.properties",
    [
      QCheck_alcotest.to_alcotest prop_incremental_order_independent;
      QCheck_alcotest.to_alcotest prop_greedy_never_exceeds_budget;
      QCheck_alcotest.to_alcotest prop_stretch_at_least_one;
      QCheck_alcotest.to_alcotest prop_more_links_never_hurt;
    ] )

let suites = suites @ [ deep_suite ]

(* ---------- Export ---------- *)

let test_export_geojson_wellformed () =
  let t = Greedy.design inputs ~budget:60 in
  let js = Export.topology_geojson inputs t in
  Alcotest.(check bool) "is a feature collection" true
    (String.length js > 50 && String.sub js 0 30 = {|{"type":"FeatureCollection","f|});
  (* one Point per site, one LineString per link *)
  let count needle hay =
    let n = String.length needle and h = String.length hay in
    let c = ref 0 in
    for i = 0 to h - n do
      if String.sub hay i n = needle then incr c
    done;
    !c
  in
  Alcotest.(check int) "points" 6 (count {|"Point"|} js);
  Alcotest.(check int) "lines" (List.length t.Topology.built) (count {|"LineString"|} js);
  (* balanced braces as a cheap well-formedness proxy *)
  Alcotest.(check int) "balanced braces" (count "{" js) (count "}" js)

let test_export_with_plan () =
  let t = Greedy.design inputs ~budget:60 in
  let plan = Capacity.plan inputs t ~aggregate_gbps:50.0 in
  let js = Export.topology_with_plan_geojson inputs t plan in
  Alcotest.(check bool) "series annotated" true
    (String.length js > 0
    && (let found = ref false in
        String.iteri
          (fun i _ ->
            if i + 9 <= String.length js && String.sub js i 9 = {|"series":|} then found := true)
          js;
        !found))

let test_export_budget_evolution () =
  let steps =
    Export.budget_evolution inputs ~budgets:[ 20; 40; 60 ]
      ~design:(fun inputs ~budget -> Greedy.design inputs ~budget)
  in
  Alcotest.(check int) "three frames" 3 (List.length steps);
  let links = List.map (fun (_, t, _) -> List.length t.Topology.built) steps in
  Alcotest.(check bool) "network grows with budget" true
    (List.sort compare links = links)

(* Test-local inverse of Export.json_escape, over the full escape
   vocabulary (named short escapes plus \u00XX). *)
let json_unescape s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (if s.[!i] <> '\\' then Buffer.add_char b s.[!i]
     else begin
       incr i;
       match s.[!i] with
       | '"' -> Buffer.add_char b '"'
       | '\\' -> Buffer.add_char b '\\'
       | 'n' -> Buffer.add_char b '\n'
       | 'b' -> Buffer.add_char b '\b'
       | 'f' -> Buffer.add_char b '\012'
       | 'r' -> Buffer.add_char b '\r'
       | 't' -> Buffer.add_char b '\t'
       | 'u' ->
         Buffer.add_char b (Char.chr (int_of_string ("0x" ^ String.sub s (!i + 1) 4)));
         i := !i + 4
       | c -> Alcotest.failf "unexpected escape \\%c" c
     end);
    incr i
  done;
  Buffer.contents b

let test_export_json_escape_roundtrip () =
  (* Every byte below 0x20, plus the named cases, round-trips; the
     escaped form never contains a raw control character or bare
     quote (RFC 8259). *)
  let control = String.init 0x20 Char.chr in
  let cases =
    [ "plain"; "quote\"backslash\\"; "tab\there\nnewline"; control;
      "S\xc3\xa3o Paulo" (* multibyte UTF-8 passes through untouched *) ]
  in
  List.iter
    (fun s ->
      let e = Export.json_escape s in
      String.iter
        (fun c ->
          Alcotest.(check bool) "no raw control char in escaped form" true
            (Char.code c >= 0x20))
        e;
      String.iteri
        (fun i c ->
          if c = '"' then
            Alcotest.(check bool) "every quote is escaped" true
              (i > 0 && e.[i - 1] = '\\'))
        e;
      Alcotest.(check string) (Printf.sprintf "round-trips %S" s) s (json_unescape e))
    cases

let export_suite =
  ( "design.export",
    [
      Alcotest.test_case "geojson wellformed" `Quick test_export_geojson_wellformed;
      Alcotest.test_case "plan annotation" `Quick test_export_with_plan;
      Alcotest.test_case "budget evolution" `Quick test_export_budget_evolution;
      Alcotest.test_case "json escape round-trip" `Quick test_export_json_escape_roundtrip;
    ] )

let suites = suites @ [ export_suite ]
