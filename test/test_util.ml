open Cisp_util

let check_float = Alcotest.(check (float 1e-9))
let check_float_eps eps = Alcotest.(check (float eps))

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 1 and b = Rng.create 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in [0,7)" true (v >= 0 && v < 7)
  done

let test_rng_float_bounds () =
  let rng = Rng.create 4 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.bits64 a) in
  let ys = List.init 10 (fun _ -> Rng.bits64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_gaussian_moments () =
  let rng = Rng.create 6 in
  let xs = Array.init 50_000 (fun _ -> Rng.gaussian rng) in
  check_float_eps 0.05 "mean ~ 0" 0.0 (Stats.mean xs);
  check_float_eps 0.05 "stddev ~ 1" 1.0 (Stats.stddev xs)

let test_rng_exponential_mean () =
  let rng = Rng.create 7 in
  let xs = Array.init 50_000 (fun _ -> Rng.exponential rng 4.0) in
  check_float_eps 0.01 "mean ~ 1/rate" 0.25 (Stats.mean xs)

let test_rng_poisson_mean () =
  let rng = Rng.create 8 in
  let xs = Array.init 20_000 (fun _ -> float_of_int (Rng.poisson rng 3.5)) in
  check_float_eps 0.1 "mean ~ lambda" 3.5 (Stats.mean xs);
  (* large-mean branch *)
  let ys = Array.init 20_000 (fun _ -> float_of_int (Rng.poisson rng 80.0)) in
  check_float_eps 1.0 "large mean" 80.0 (Stats.mean ys)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_distinct () =
  let rng = Rng.create 10 in
  let arr = Array.init 20 (fun i -> i) in
  let s = Rng.sample rng arr 10 in
  Alcotest.(check int) "size" 10 (Array.length s);
  let l = Array.to_list s in
  Alcotest.(check int) "distinct" 10 (List.length (List.sort_uniq compare l))

(* ---------- Stats ---------- *)

let test_stats_mean () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "empty" 0.0 (Stats.mean [||])

let test_stats_weighted_mean () =
  check_float "weighted" 3.0 (Stats.weighted_mean [| (1.0, 1.0); (1.0, 5.0) |]);
  check_float "unequal" 4.0 (Stats.weighted_mean [| (3.0, 5.0); (1.0, 1.0) |]);
  check_float "zero weights" 0.0 (Stats.weighted_mean [| (0.0, 5.0) |])

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p50" 3.0 (Stats.percentile xs 50.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0);
  (* unsorted input *)
  check_float "unsorted" 3.0 (Stats.median [| 5.0; 1.0; 3.0; 2.0; 4.0 |])

let test_stats_variance () =
  (* population variance of [1;3;5]: ((-2)^2 + 0 + 2^2)/3 = 8/3 *)
  check_float "variance" (8.0 /. 3.0) (Stats.variance [| 1.0; 3.0; 5.0 |]);
  check_float "stddev" (sqrt (8.0 /. 3.0)) (Stats.stddev [| 1.0; 3.0; 5.0 |])

let test_stats_min_max () =
  let lo, hi = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_float "min" (-1.0) lo;
  check_float "max" 7.0 hi;
  Alcotest.check_raises "empty raises" (Invalid_argument "Stats.min_max: empty")
    (fun () -> ignore (Stats.min_max [||]))

let test_stats_cdf () =
  let c = Stats.cdf [| 2.0; 1.0 |] in
  Alcotest.(check int) "points" 2 (Array.length c);
  check_float "first value" 1.0 (fst c.(0));
  check_float "first frac" 0.5 (snd c.(0));
  check_float "last frac" 1.0 (snd c.(1))

let test_stats_histogram () =
  let h = Stats.histogram [| 0.0; 0.5; 1.0; 1.5; 2.0 |] ~bins:2 in
  Alcotest.(check int) "bins" 2 (Array.length h);
  Alcotest.(check int) "counts sum" 5 (Array.fold_left (fun a (_, c) -> a + c) 0 h)

let test_stats_histogram_guard () =
  (* invalid_arg, not assert: the check must survive -noassert. *)
  Alcotest.check_raises "bins = 0 rejected"
    (Invalid_argument "Stats.histogram: bins <= 0") (fun () ->
      ignore (Stats.histogram [| 1.0 |] ~bins:0))

let test_stats_summary () =
  let s = Stats.summarize (Array.init 101 (fun i -> float_of_int i)) in
  Alcotest.(check int) "n" 101 s.n;
  check_float "p50" 50.0 s.p50;
  check_float "p99" 99.0 s.p99;
  check_float "max" 100.0 s.max;
  let empty = Stats.summarize [||] in
  Alcotest.(check int) "empty n" 0 empty.n

(* ---------- Units ---------- *)

let test_units () =
  check_float_eps 1e-6 "c" 299792.458 Units.c_vacuum_km_s;
  check_float_eps 1e-6 "fiber factor" 1.5 Units.fiber_latency_factor;
  check_float_eps 1e-9 "ms roundtrip" 123.0 (Units.km_of_ms_at_c (Units.ms_of_km_at_c 123.0));
  check_float_eps 1e-9 "1000km at c" (1000.0 /. 299792.458 *. 1000.0) (Units.ms_of_km_at_c 1000.0);
  check_float_eps 1e-9 "gbps to GB" 125.0 (Units.gb_of_gbps_over 1.0 ~seconds:1000.0);
  check_float_eps 1e-9 "deg rad roundtrip" 33.3 (Units.rad_to_deg (Units.deg_to_rad 33.3))

(* QCheck properties *)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile monotone in p" ~count:200
    QCheck.(pair (array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.)) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"mean within [min,max]" ~count:200
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1e6) 1e6))
    (fun xs ->
      let lo, hi = Stats.min_max xs in
      let m = Stats.mean xs in
      m >= lo -. 1e-6 && m <= hi +. 1e-6)

let prop_rng_int_in_range =
  QCheck.Test.make ~name:"Rng.int in range" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let suites =
  [
    ( "util.rng",
      [
        Alcotest.test_case "determinism" `Quick test_rng_determinism;
        Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
        Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "split independent" `Quick test_rng_split_independent;
        Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
        Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
        Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
        Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
        Alcotest.test_case "sample distinct" `Quick test_rng_sample_distinct;
        QCheck_alcotest.to_alcotest prop_rng_int_in_range;
      ] );
    ( "util.stats",
      [
        Alcotest.test_case "mean" `Quick test_stats_mean;
        Alcotest.test_case "weighted mean" `Quick test_stats_weighted_mean;
        Alcotest.test_case "percentile" `Quick test_stats_percentile;
        Alcotest.test_case "variance" `Quick test_stats_variance;
        Alcotest.test_case "min max" `Quick test_stats_min_max;
        Alcotest.test_case "cdf" `Quick test_stats_cdf;
        Alcotest.test_case "histogram" `Quick test_stats_histogram;
        Alcotest.test_case "histogram guard" `Quick test_stats_histogram_guard;
        Alcotest.test_case "summary" `Quick test_stats_summary;
        QCheck_alcotest.to_alcotest prop_percentile_monotone;
        QCheck_alcotest.to_alcotest prop_mean_between_min_max;
      ] );
    ("util.units", [ Alcotest.test_case "constants and conversions" `Quick test_units ]);
  ]
