open Cisp_traffic

let cities =
  [|
    Cisp_data.City.make "A" ~lat:40.0 ~lon:(-100.0) ~population:1_000_000;
    Cisp_data.City.make "B" ~lat:41.0 ~lon:(-90.0) ~population:500_000;
    Cisp_data.City.make "C" ~lat:39.0 ~lon:(-80.0) ~population:250_000;
  |]

let check_float eps = Alcotest.(check (float eps))

let test_population_product () =
  let m = Matrix.population_product cities in
  check_float 1e-9 "normalized" 1.0 (Matrix.total m);
  check_float 1e-12 "zero diagonal" 0.0 m.(1).(1);
  (* h_AB / h_AC = popB / popC = 2 *)
  check_float 1e-9 "proportionality" 2.0 (m.(0).(1) /. m.(0).(2));
  check_float 1e-12 "symmetric" m.(0).(1) m.(1).(0)

let test_uniform_pairs () =
  let m = Matrix.uniform_pairs 4 in
  check_float 1e-9 "normalized" 1.0 (Matrix.total m);
  check_float 1e-12 "equal entries" m.(0).(1) m.(2).(3)

let test_scale_to_gbps () =
  let m = Matrix.scale_to_gbps (Matrix.population_product cities) ~aggregate_gbps:100.0 in
  check_float 1e-6 "sums to aggregate" 100.0 (Matrix.total m)

let test_normalize_zero () =
  let z = Array.make_matrix 2 2 0.0 in
  let n = Matrix.normalize z in
  check_float 1e-12 "zero stays zero" 0.0 (Matrix.total n)

let test_mix () =
  let a = Matrix.population_product cities in
  let b = Matrix.uniform_pairs 3 in
  let m = Matrix.mix [ (4.0, a); (3.0, b) ] in
  check_float 1e-9 "normalized" 1.0 (Matrix.total m);
  (* Mixing weights: entry = (4 a + 3 b)/7. *)
  check_float 1e-9 "weighted blend" (((4.0 *. a.(0).(1)) +. (3.0 *. b.(0).(1))) /. 7.0) m.(0).(1)

let test_dc_edge () =
  let n_total = 4 in
  (* city 0,1 -> dc 2 and 3 respectively, city 2 unused *)
  let dc_of = function 0 -> Some 2 | 1 -> Some 3 | _ -> None in
  let m = Matrix.dc_edge ~cities ~n_total ~dc_of in
  check_float 1e-9 "normalized" 1.0 (Matrix.total m);
  Alcotest.(check bool) "city0-dc2 traffic" true (m.(0).(2) > 0.0);
  Alcotest.(check bool) "symmetric" true (m.(2).(0) = m.(0).(2));
  check_float 1e-12 "city0-dc3 empty" 0.0 (m.(0).(3));
  (* proportional to population: city0 twice city1 *)
  check_float 1e-9 "population proportional" 2.0 (m.(0).(2) /. m.(1).(3))

let test_perturb_factors_range () =
  let f = Perturb.factors ~n:1000 ~gamma:0.3 ~seed:7 in
  Array.iter
    (fun x -> Alcotest.(check bool) "in [0.7, 1.3]" true (x >= 0.7 && x <= 1.3))
    f;
  (* gamma = 0 is the identity *)
  let f0 = Perturb.factors ~n:10 ~gamma:0.0 ~seed:7 in
  Array.iter (fun x -> check_float 1e-12 "unit factor" 1.0 x) f0

let test_perturb_deterministic () =
  let a = Perturb.population cities ~gamma:0.5 ~seed:3 in
  let b = Perturb.population cities ~gamma:0.5 ~seed:3 in
  check_float 1e-12 "same seed" a.(0).(1) b.(0).(1);
  let c = Perturb.population cities ~gamma:0.5 ~seed:4 in
  Alcotest.(check bool) "different seed" true (a.(0).(1) <> c.(0).(1))

let test_perturb_normalized () =
  let m = Perturb.population cities ~gamma:0.4 ~seed:11 in
  check_float 1e-9 "normalized" 1.0 (Matrix.total m);
  check_float 1e-12 "zero diagonal" 0.0 m.(2).(2);
  check_float 1e-12 "symmetric" m.(0).(1) m.(1).(0)

let test_perturb_gamma_zero_identity () =
  (* gamma = 0 draws unit factors, so the perturbed matrix is exactly
     the unperturbed population product. *)
  let base = Matrix.population_product cities in
  let m = Perturb.population cities ~gamma:0.0 ~seed:99 in
  Array.iteri
    (fun i row -> Array.iteri (fun j v -> check_float 1e-12 "entry unchanged" v m.(i).(j)) row)
    base

let test_perturb_factors_length () =
  Alcotest.(check int) "one factor per city" 17
    (Array.length (Perturb.factors ~n:17 ~gamma:0.2 ~seed:1))

let prop_perturb_factors_in_range =
  QCheck.Test.make ~name:"perturbation factors stay in [1-g, 1+g]" ~count:200
    QCheck.(pair small_int (float_range 0.0 1.0))
    (fun (seed, gamma) ->
      Array.for_all
        (fun x -> x >= 1.0 -. gamma -. 1e-12 && x <= 1.0 +. gamma +. 1e-12)
        (Perturb.factors ~n:64 ~gamma ~seed))

let prop_mix_normalized =
  QCheck.Test.make ~name:"mix of random matrices is normalized" ~count:100
    QCheck.(pair small_int (int_range 2 6))
    (fun (seed, n) ->
      let rng = Cisp_util.Rng.create seed in
      let rand_matrix () =
        let m = Array.init n (fun _ -> Array.init n (fun _ -> Cisp_util.Rng.float rng 5.0)) in
        for i = 0 to n - 1 do
          m.(i).(i) <- 0.0
        done;
        m
      in
      let m = Matrix.mix [ (1.0, rand_matrix ()); (2.0, rand_matrix ()) ] in
      Float.abs (Matrix.total m -. 1.0) < 1e-9)

let suites =
  [
    ( "traffic.matrix",
      [
        Alcotest.test_case "population product" `Quick test_population_product;
        Alcotest.test_case "uniform pairs" `Quick test_uniform_pairs;
        Alcotest.test_case "scale to gbps" `Quick test_scale_to_gbps;
        Alcotest.test_case "normalize zero" `Quick test_normalize_zero;
        Alcotest.test_case "mix" `Quick test_mix;
        Alcotest.test_case "dc edge" `Quick test_dc_edge;
        QCheck_alcotest.to_alcotest prop_mix_normalized;
      ] );
    ( "traffic.perturb",
      [
        Alcotest.test_case "factor range" `Quick test_perturb_factors_range;
        Alcotest.test_case "deterministic" `Quick test_perturb_deterministic;
        Alcotest.test_case "normalized" `Quick test_perturb_normalized;
        Alcotest.test_case "gamma zero is identity" `Quick test_perturb_gamma_zero_identity;
        Alcotest.test_case "factors length" `Quick test_perturb_factors_length;
        QCheck_alcotest.to_alcotest prop_perturb_factors_in_range;
      ] );
  ]
