(* Parallel determinism regression (the pool's core contract): the
   whole design pipeline — APSP inputs, greedy + local search, export,
   weather — must be bit-identical at every pool width.  Runs the
   small Europe scenario at widths 1, 2, 4 and 8 and compares outputs
   structurally (floats bitwise, via polymorphic equality: no NaNs in
   these pipelines). *)

open Cisp_design
module Pool = Cisp_util.Pool
module Hops = Cisp_towers.Hops

let config = { Scenario.europe_config with Scenario.n_sites = Some 8 }
let budget = 120

(* Lazy so the (heavy, memoized) artifact build is paid inside the
   first test run, not at module init of every `dune runtest`
   filter. *)
let artifacts = lazy (Scenario.artifacts ~config ())

let bits f = Int64.bits_of_float f

let run_design width =
  Pool.with_default_jobs width (fun () ->
      let a = Lazy.force artifacts in
      (* Recomputed per call: exercises the pooled per-source Dijkstra
         APSP that builds [Inputs.mw_km]. *)
      let inputs = Scenario.population_inputs a in
      let topo = Scenario.design inputs ~budget in
      (topo, Topology.stretch_of topo, Export.topology_geojson inputs topo))

let test_design_width_invariant () =
  let t1, s1, g1 = run_design 1 in
  List.iter
    (fun width ->
      let tw, sw, gw = run_design width in
      let label fmt = Printf.sprintf fmt width in
      Alcotest.(check (list (pair int int)))
        (label "built links, jobs=1 vs %d")
        t1.Topology.built tw.Topology.built;
      Alcotest.(check int) (label "tower cost, jobs=1 vs %d") t1.Topology.cost tw.Topology.cost;
      Alcotest.(check int64) (label "stretch bitwise, jobs=1 vs %d") (bits s1) (bits sw);
      Alcotest.(check string) (label "exported GeoJSON, jobs=1 vs %d") g1 gw)
    [ 2; 4; 8 ]

let test_apsp_width_invariant () =
  let a = Lazy.force artifacts in
  let links w = Pool.with_default_jobs w (fun () -> Hops.all_links a.Scenario.hops) in
  Alcotest.(check bool) "MW link matrix identical at jobs=1 vs 4" true (links 1 = links 4)

let test_metric_width_invariant () =
  let a = Lazy.force artifacts in
  let inputs = Scenario.population_inputs a in
  let base w = Pool.with_default_jobs w (fun () -> Topology.fiber_baseline inputs) in
  Alcotest.(check bool) "fiber metric closure identical at jobs=1 vs 4" true (base 1 = base 4);
  let topo = Pool.with_default_jobs 1 (fun () -> Scenario.design inputs ~budget) in
  let dist w = Pool.with_default_jobs w (fun () -> Topology.distances topo) in
  Alcotest.(check bool) "topology metric identical at jobs=1 vs 4" true (dist 1 = dist 4)

let test_weather_width_invariant () =
  let a = Lazy.force artifacts in
  let inputs = Scenario.population_inputs a in
  let topo = Pool.with_default_jobs 1 (fun () -> Scenario.design inputs ~budget) in
  let year w =
    Pool.with_default_jobs w (fun () ->
        Cisp_weather.Year.run ~intervals:16 ~climate:Cisp_weather.Rainfield.eu_climate
          ~hops:a.Scenario.hops inputs topo)
  in
  let r1 = year 1 in
  List.iter
    (fun w ->
      let rw = year w in
      Alcotest.(check int64)
        (Printf.sprintf "mean failed links bitwise, jobs=1 vs %d" w)
        (bits r1.Cisp_weather.Year.mean_failed_links)
        (bits rw.Cisp_weather.Year.mean_failed_links);
      Alcotest.(check bool)
        (Printf.sprintf "per-pair summaries identical, jobs=1 vs %d" w)
        true
        (r1.Cisp_weather.Year.per_pair = rw.Cisp_weather.Year.per_pair))
    [ 2; 4; 8 ]

let test_telemetry_bit_identity () =
  (* The telemetry layer's core contract: enabling it changes nothing.
     Same design run with telemetry off and on, at jobs 1 and 4 — the
     topology, stretch and GeoJSON must be byte-identical (and the
     instrumented phases must actually have recorded). *)
  let module Telemetry = Cisp_util.Telemetry in
  Telemetry.reset ();
  Fun.protect ~finally:Telemetry.reset (fun () ->
      let off1 = run_design 1 and off4 = run_design 4 in
      Telemetry.enable_metrics ();
      let on1 = run_design 1 and on4 = run_design 4 in
      List.iter
        (fun (label, (t_off, s_off, g_off), (t_on, s_on, g_on)) ->
          Alcotest.(check (list (pair int int)))
            (label ^ ": built links identical") t_off.Topology.built t_on.Topology.built;
          Alcotest.(check int64) (label ^ ": stretch bitwise") (bits s_off) (bits s_on);
          Alcotest.(check string) (label ^ ": GeoJSON identical") g_off g_on)
        [ ("jobs=1", off1, on1); ("jobs=4", off4, on4) ];
      List.iter
        (fun span ->
          Alcotest.(check bool)
            (Printf.sprintf "phase %s recorded nonzero time" span)
            true
            (Telemetry.span_calls span > 0 && Telemetry.span_total_s span > 0.0))
        (* [run_design] reuses memoized artifacts, so only the per-call
           phases appear here; hops.build / capacity.plan are covered by
           the CLI smoke run in CI. *)
        [ "hops.all_links"; "apsp"; "greedy.score"; "greedy.design" ])

(* ---------- failure-scenario golden suite ---------- *)

module Scenarios = Cisp_weather.Scenarios

(* The three golden scenarios of the resilience story: a convective
   deluge, a hurricane window marching across the deployment, and two
   correlated regional tower outages. *)
let run_scenario_suite width =
  Pool.with_default_jobs width (fun () ->
      let a = Lazy.force artifacts in
      let inputs = Scenario.population_inputs a in
      let topo = Scenario.design inputs ~budget in
      let spare = Capacity.spare_from_registry a.Scenario.hops in
      let plan = Capacity.plan ~spare_series_at_hop:spare inputs topo ~aggregate_gbps:10.0 in
      let model =
        { Cisp_sim.Routing.inputs; topology = topo;
          mw_gbps = Cisp_sim.Builder.provisioned_mw_gbps plan;
          fiber_gbps = Cisp_sim.Builder.default_config.Cisp_sim.Builder.fiber_gbps }
      in
      let demands =
        Cisp_traffic.Matrix.scale_to_gbps inputs.Inputs.traffic ~aggregate_gbps:10.0
      in
      let schemes = Scenarios.default_schemes ~k:3 in
      let eye = inputs.Inputs.sites.(0).Cisp_data.City.coord in
      let specs =
        [
          Scenarios.Uniform_rain { mm_h = 110.0 };
          Scenarios.Hurricane
            { center = eye; track_bearing_deg = 40.0; step_km = 60.0; intervals = 6 };
          Scenarios.Correlated_towers { blobs = 2; radius_km = 150.0; intervals = 6 };
        ]
      in
      let results =
        List.map
          (fun spec ->
            Scenarios.run ~schemes ~hops:a.Scenario.hops ~model ~demands_gbps:demands spec)
          specs
      in
      (results, Scenarios.frontier_csv results))

(* Every float of a result, bitwise — NaN-safe, unlike polymorphic
   equality. *)
let scenario_bits results =
  List.map
    (fun r ->
      ( r.Scenarios.name,
        r.Scenarios.intervals,
        bits r.Scenarios.mean_failed_links,
        List.map
          (fun s ->
            ( s.Scenarios.scheme,
              bits s.Scenarios.availability,
              bits s.Scenarios.mean_stretch,
              bits s.Scenarios.p99_stretch,
              bits s.Scenarios.worst_stretch ))
          r.Scenarios.schemes ))
    results

(* Checked-in expected frontier for the 8-site Europe fixture: any
   drift in routing, the failure model, or the scenario replay shows
   up as a diff here. *)
let golden_frontier_csv =
  "scenario,scheme,availability,mean_stretch,p99_stretch,worst_stretch,mean_failed_links\n\
   uniform-rain,shortest-recompute,1.000000,1.930000,1.930000,1.930000,13.0000\n\
   uniform-rain,failover-k3,0.700809,1.930000,1.930000,1.930000,13.0000\n\
   uniform-rain,split-k3,0.700809,1.942831,2.026460,2.026460,13.0000\n\
   hurricane,shortest-recompute,1.000000,1.038350,1.585808,1.585808,0.1667\n\
   hurricane,failover-k3,1.000000,1.040195,1.585808,1.598297,0.1667\n\
   hurricane,split-k3,1.000000,1.425031,1.961211,1.961211,0.1667\n\
   correlated-towers,shortest-recompute,1.000000,1.161804,1.930000,1.930000,2.3333\n\
   correlated-towers,failover-k3,0.978155,1.176764,1.930000,1.930000,2.3333\n\
   correlated-towers,split-k3,0.978155,1.495399,2.228767,2.230679,2.3333\n"

let test_scenario_suite_golden () =
  let r1, csv1 = run_scenario_suite 1 in
  Alcotest.(check string) "golden frontier (jobs=1)" golden_frontier_csv csv1;
  let b1 = scenario_bits r1 in
  List.iter
    (fun w ->
      let rw, csvw = run_scenario_suite w in
      Alcotest.(check string) (Printf.sprintf "frontier CSV, jobs=1 vs %d" w) csv1 csvw;
      Alcotest.(check bool)
        (Printf.sprintf "results bitwise, jobs=1 vs %d" w)
        true
        (b1 = scenario_bits rw))
    [ 2; 4; 8 ]

let test_los_sweep_width_invariant () =
  (* Rebuild the tower hop graph on a cold DEM cache at several pool
     widths: covers the LOS + Fresnel sweep and the snapped-cell-center
     cache semantics.  Both the sweep's outputs AND the cache's
     shared-store contents (every cell key and its height, bitwise)
     must not depend on which domain touched a cell first. *)
  let a = Lazy.force artifacts in
  let build w =
    Pool.with_default_jobs w (fun () ->
        let cache = Cisp_terrain.Dem_cache.create a.Scenario.dem in
        let h =
          Hops.build ~config:a.Scenario.hops.Hops.config ~cache
            ~sites:(Array.to_list a.Scenario.sites)
            ~towers:(Array.to_list a.Scenario.hops.Hops.towers)
            ()
        in
        ( h.Hops.feasible_hops,
          Hops.all_links h,
          Cisp_terrain.Dem_cache.surface_cells cache,
          Cisp_terrain.Dem_cache.ground_cells cache ))
  in
  let f1, l1, s1, g1 = build 1 in
  Alcotest.(check bool) "sequential sweep populated the cache" true (s1 <> [] && g1 <> []);
  List.iter
    (fun w ->
      let fw, lw, sw, gw = build w in
      Alcotest.(check int) (Printf.sprintf "feasible hops, jobs=1 vs %d" w) f1 fw;
      Alcotest.(check bool) (Printf.sprintf "MW links, jobs=1 vs %d" w) true (l1 = lw);
      Alcotest.(check bool) (Printf.sprintf "surface cells, jobs=1 vs %d" w) true (s1 = sw);
      Alcotest.(check bool) (Printf.sprintf "ground cells, jobs=1 vs %d" w) true (g1 = gw))
    [ 2; 4; 8 ]

let test_ch_preprocessing_width_invariant () =
  (* Contraction-hierarchy preprocessing runs its witness searches on
     the pool: the contraction order (hence ranks, shortcuts and every
     query answer) must be a pure function of the graph, not of how
     rows were chunked across domains.  A geometric multigraph large
     enough that the pooled path actually engages, built at widths 1,
     2 and 8, must yield identical rank arrays and bitwise-identical
     many-to-many distance blocks. *)
  let module Graph = Cisp_graph.Graph in
  let module Ch = Cisp_graph.Ch in
  let n = 260 in
  let g =
    let rng = Cisp_util.Rng.create 97 in
    let xs = Array.init n (fun _ -> Cisp_util.Rng.uniform rng 0.0 1.0) in
    let ys = Array.init n (fun _ -> Cisp_util.Rng.uniform rng 0.0 1.0) in
    let g = Graph.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let dx = xs.(u) -. xs.(v) and dy = ys.(u) -. ys.(v) in
        let d = sqrt ((dx *. dx) +. (dy *. dy)) in
        if d <= 0.14 then Graph.add_undirected g u v d
      done
    done;
    g
  in
  let sources = Array.init 12 (fun k -> (k * 37) mod n) in
  let targets = Array.init 12 (fun k -> (k * 53) mod n) in
  let run w =
    Pool.with_default_jobs w (fun () ->
        let ch = Cisp_graph.Ch.build g in
        (Array.init n (Ch.rank ch), Ch.many_to_many ch ~sources ~targets))
  in
  let ranks1, dist1 = run 1 in
  List.iter
    (fun w ->
      let ranksw, distw = run w in
      Alcotest.(check (array int))
        (Printf.sprintf "contraction ranks, jobs=1 vs %d" w)
        ranks1 ranksw;
      Array.iteri
        (fun r row1 ->
          Array.iteri
            (fun c d1 ->
              Alcotest.(check int64)
                (Printf.sprintf "m2m distance [%d][%d] bitwise, jobs=1 vs %d" r c w)
                (bits d1) (bits distw.(r).(c)))
            row1)
        dist1)
    [ 2; 8 ]

let suites =
  [
    ( "determinism.parallel",
      [
        Alcotest.test_case "design pipeline at jobs 1/2/4/8" `Slow test_design_width_invariant;
        Alcotest.test_case "APSP link matrix" `Slow test_apsp_width_invariant;
        Alcotest.test_case "metric closures" `Slow test_metric_width_invariant;
        Alcotest.test_case "weather year at jobs 1/2/4/8" `Slow test_weather_width_invariant;
        Alcotest.test_case "scenario suite golden at jobs 1/2/4/8" `Slow test_scenario_suite_golden;
        Alcotest.test_case "LOS sweep on a cold cache" `Slow test_los_sweep_width_invariant;
        Alcotest.test_case "CH preprocessing at jobs 1/2/8" `Slow
          test_ch_preprocessing_width_invariant;
        Alcotest.test_case "telemetry on/off bit-identity" `Slow test_telemetry_bit_identity;
      ] );
  ]
