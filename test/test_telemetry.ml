(* Cisp_util.Telemetry: counter/series/span semantics, the disabled
   no-op path, deterministic merging of parallel increments, and the
   JSONL trace sink (validated with a small test-local JSON parser). *)

module Telemetry = Cisp_util.Telemetry
module Pool = Cisp_util.Pool

(* Every test owns the global telemetry state: start clean, leave it
   off for whoever runs next. *)
let with_clean f =
  Telemetry.reset ();
  Fun.protect ~finally:Telemetry.reset f

let test_disabled_noop () =
  with_clean (fun () ->
      Alcotest.(check bool) "disabled by default" false (Telemetry.enabled ());
      Telemetry.incr "t.c";
      Telemetry.add "t.c" 41;
      Telemetry.observe "t.s" 1.0;
      let r = Telemetry.with_span "t.span" (fun () -> 7) in
      Alcotest.(check int) "with_span passes the value through" 7 r;
      Alcotest.(check int) "counter untouched" 0 (Telemetry.counter "t.c");
      Alcotest.(check int) "no samples" 0 (Array.length (Telemetry.samples "t.s"));
      Alcotest.(check int) "no span recorded" 0 (Telemetry.span_calls "t.span"))

let test_counters () =
  with_clean (fun () ->
      Telemetry.enable_metrics ();
      Alcotest.(check bool) "enabled" true (Telemetry.enabled ());
      Telemetry.incr "t.c";
      Telemetry.add "t.c" 41;
      Alcotest.(check int) "accumulates" 42 (Telemetry.counter "t.c");
      Alcotest.(check int) "unknown name reads 0" 0 (Telemetry.counter "t.other"))

let test_series () =
  with_clean (fun () ->
      Telemetry.enable_metrics ();
      List.iter (Telemetry.observe "t.s") [ 3.0; 1.0; 2.0 ];
      Alcotest.(check (array (float 0.0)))
        "samples come back sorted" [| 1.0; 2.0; 3.0 |] (Telemetry.samples "t.s");
      let s = Telemetry.series_summary "t.s" in
      Alcotest.(check int) "summary count" 3 s.Cisp_util.Stats.n;
      Alcotest.(check (float 1e-9)) "summary mean" 2.0 s.Cisp_util.Stats.mean)

let test_spans () =
  with_clean (fun () ->
      Telemetry.enable_metrics ();
      let r =
        Telemetry.with_span "t.outer" (fun () ->
            Telemetry.with_span "t.inner" (fun () -> ())
            ; 11)
      in
      Alcotest.(check int) "value through nested spans" 11 r;
      Alcotest.(check int) "outer recorded" 1 (Telemetry.span_calls "t.outer");
      Alcotest.(check int) "inner recorded" 1 (Telemetry.span_calls "t.inner");
      Alcotest.(check bool) "outer >= inner time" true
        (Telemetry.span_total_s "t.outer" >= Telemetry.span_total_s "t.inner");
      (* A raising thunk still records its span (and re-raises). *)
      (try Telemetry.with_span "t.raise" (fun () -> failwith "boom") with
      | Failure _ -> ());
      Alcotest.(check int) "raising span recorded" 1 (Telemetry.span_calls "t.raise"))

let test_parallel_merge () =
  let total width =
    with_clean (fun () ->
        Telemetry.enable_metrics ();
        Pool.with_default_jobs width (fun () ->
            Pool.parallel_for (Pool.get ()) ~n:1000 (fun i ->
                Telemetry.incr "t.par";
                Telemetry.add "t.par" (i mod 3);
                Telemetry.observe "t.par_s" (float_of_int (i mod 7))));
        (Telemetry.counter "t.par", Telemetry.samples "t.par_s"))
  in
  let c1, s1 = total 1 in
  let c4, s4 = total 4 in
  Alcotest.(check int) "counter total at jobs=1" (1000 + 999) c1;
  Alcotest.(check int) "counter merges identically at jobs=4" c1 c4;
  Alcotest.(check (array (float 0.0))) "sorted samples identical" s1 s4

let test_stress_jobs8 () =
  (* 8 domains hammer the lock-free counters and the per-domain sample
     buffers at once: totals must be exact (no lost updates) and the
     merged distribution a pure function of the observed multiset. *)
  let n = 4096 in
  with_clean (fun () ->
      Telemetry.enable_metrics ();
      Pool.with_default_jobs 8 (fun () ->
          Pool.parallel_for (Pool.get ()) ~n (fun i ->
              Telemetry.incr "t.stress";
              Telemetry.add "t.stress.sum" i;
              Telemetry.observe "t.stress_s" (float_of_int (i mod 16))));
      Alcotest.(check int) "every increment lands" n (Telemetry.counter "t.stress");
      Alcotest.(check int) "exact sum, no lost update" (n * (n - 1) / 2)
        (Telemetry.counter "t.stress.sum");
      let s = Telemetry.samples "t.stress_s" in
      Alcotest.(check int) "every observation lands" n (Array.length s);
      (* sorted merge: exactly n/16 of each residue, ascending *)
      Array.iteri
        (fun k x ->
          let expected = float_of_int (k / (n / 16)) in
          if x <> expected then
            Alcotest.failf "merged sample %d: %g, expected %g" k x expected)
        s;
      Alcotest.(check bool) "series visible in the name index" true
        (List.mem "t.stress_s" (Telemetry.series_names ())))

(* ---------------- JSONL sink ---------------- *)

(* Minimal JSON value parser: enough to verify every trace line is a
   standalone, well-formed object with the Chrome-trace keys. *)
type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let string_ () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char b '"'; advance ()
        | Some '\\' -> Buffer.add_char b '\\'; advance ()
        | Some '/' -> Buffer.add_char b '/'; advance ()
        | Some 'b' -> Buffer.add_char b '\b'; advance ()
        | Some 'f' -> Buffer.add_char b '\012'; advance ()
        | Some 'n' -> Buffer.add_char b '\n'; advance ()
        | Some 'r' -> Buffer.add_char b '\r'; advance ()
        | Some 't' -> Buffer.add_char b '\t'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "short \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char b (Char.chr code)
          | Some _ -> Buffer.add_char b '?' (* non-ASCII: presence is enough *)
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    let num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while (match peek () with Some c when num_char c -> true | _ -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some x -> x
    | None -> fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> list_ ()
    | Some '"' -> Str (string_ ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (number ())
    | _ -> fail "expected a value"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin advance (); Obj [] end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws ();
        let k = string_ () in
        skip_ws ();
        expect ':';
        let v = value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> fail "expected , or }"
      in
      members ();
      Obj (List.rev !fields)
    end
  and list_ () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then begin advance (); List [] end
    else begin
      let items = ref [] in
      let rec elements () =
        items := value () :: !items;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); elements ()
        | Some ']' -> advance ()
        | _ -> fail "expected , or ]"
      in
      elements ();
      List (List.rev !items)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field k = function Obj fields -> List.assoc_opt k fields | _ -> None

let read_lines file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let test_trace_sink () =
  let file = Filename.temp_file "cisp_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      with_clean (fun () ->
          Telemetry.enable_trace file;
          Telemetry.with_span "t.span \"quoted\"" (fun () -> Telemetry.incr "t.hits");
          Telemetry.add "t.hits" 2;
          Telemetry.observe "t.load" 0.5;
          Telemetry.finish ~ppf:Format.err_formatter ();
          let lines = read_lines file in
          Alcotest.(check bool) "trace has lines" true (List.length lines >= 3);
          let parsed = List.map parse_json lines in
          List.iter
            (fun j ->
              Alcotest.(check bool) "line is an object with name/ph/ts" true
                (Option.is_some (field "name" j)
                && Option.is_some (field "ph" j)
                && Option.is_some (field "ts" j)))
            parsed;
          let span =
            List.find_opt (fun j -> field "name" j = Some (Str "t.span \"quoted\"")) parsed
          in
          (match span with
          | None -> Alcotest.fail "span event missing (or name escaping broke)"
          | Some j ->
            Alcotest.(check bool) "span is a complete event" true (field "ph" j = Some (Str "X"));
            (match field "dur" j with
            | Some (Num d) -> Alcotest.(check bool) "span duration >= 0" true (d >= 0.0)
            | _ -> Alcotest.fail "span event lacks a numeric dur"));
          let counter_value name =
            List.find_map
              (fun j ->
                if field "name" j = Some (Str name) && field "ph" j = Some (Str "C") then
                  match field "args" j with
                  | Some args -> (
                      match field "value" args with Some (Num v) -> Some v | _ -> None)
                  | None -> None
                else None)
              parsed
          in
          Alcotest.(check (option (float 0.0)))
            "final counter value in trace" (Some 3.0) (counter_value "t.hits");
          Alcotest.(check (option (float 0.0)))
            "series count in trace" (Some 1.0) (counter_value "t.load.count");
          (* finish is idempotent: a second call must not rewrite. *)
          Sys.remove file;
          Telemetry.finish ~ppf:Format.err_formatter ();
          Alcotest.(check bool) "second finish is a no-op" false (Sys.file_exists file)))

let test_summary_output () =
  with_clean (fun () ->
      Telemetry.enable_metrics ();
      Telemetry.incr "t.c";
      Telemetry.observe "t.s" 4.0;
      Telemetry.with_span "t.span" (fun () -> ());
      let s = Format.asprintf "%a" Telemetry.pp_summary () in
      List.iter
        (fun needle ->
          let found =
            let ls = String.length s and ln = String.length needle in
            let rec at i = i + ln <= ls && (String.equal (String.sub s i ln) needle || at (i + 1)) in
            at 0
          in
          Alcotest.(check bool) (Printf.sprintf "summary mentions %s" needle) true found)
        [ "-- telemetry --"; "t.c"; "t.s"; "t.span"; "spans:"; "counters:"; "distributions:" ])

let suites =
  [
    ( "telemetry",
      [
        Alcotest.test_case "disabled is a no-op" `Quick test_disabled_noop;
        Alcotest.test_case "counters" `Quick test_counters;
        Alcotest.test_case "series" `Quick test_series;
        Alcotest.test_case "spans" `Quick test_spans;
        Alcotest.test_case "parallel merge at jobs 1/4" `Quick test_parallel_merge;
        Alcotest.test_case "stress at jobs 8" `Slow test_stress_jobs8;
        Alcotest.test_case "JSONL trace sink" `Quick test_trace_sink;
        Alcotest.test_case "summary sink" `Quick test_summary_output;
      ] );
  ]
