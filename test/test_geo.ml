open Cisp_geo

let coord = Coord.make
let check_float eps = Alcotest.(check (float eps))

let nyc = coord ~lat:40.7128 ~lon:(-74.006)
let la = coord ~lat:34.0522 ~lon:(-118.2437)
let chicago = coord ~lat:41.8781 ~lon:(-87.6298)
let london = coord ~lat:51.5074 ~lon:(-0.1278)

(* ---------- Coord ---------- *)

let test_coord_validation () =
  Alcotest.check_raises "lat 91 rejected"
    (Invalid_argument "Coord.make: latitude 91.000000 out of range") (fun () ->
      ignore (coord ~lat:91.0 ~lon:0.0));
  let c = coord ~lat:0.0 ~lon:190.0 in
  check_float 1e-9 "lon normalized" (-170.0) (Coord.lon c);
  let c2 = coord ~lat:0.0 ~lon:(-190.0) in
  check_float 1e-9 "lon normalized up" 170.0 (Coord.lon c2)

let test_coord_bbox () =
  let b = Coord.bbox_of_points [ nyc; la; chicago ] in
  check_float 1e-9 "min lat" 34.0522 b.min_lat;
  check_float 1e-9 "max lat" 41.8781 b.max_lat;
  Alcotest.(check bool) "nyc inside" true (Coord.in_bbox b nyc);
  Alcotest.(check bool) "london outside" false (Coord.in_bbox b london);
  let b' = Coord.expand_bbox b ~margin_deg:2.0 in
  check_float 1e-9 "expanded" 32.0522 b'.min_lat

let test_coord_compare () =
  Alcotest.(check bool) "equal self" true (Coord.equal nyc nyc);
  Alcotest.(check bool) "not equal" false (Coord.equal nyc la);
  Alcotest.(check int) "compare self" 0 (Coord.compare nyc nyc)

(* ---------- Geodesy ---------- *)

let test_distance_known () =
  (* Reference great-circle distances (spherical, R=6371): NYC-LA ~3936 km,
     NYC-London ~5570 km. *)
  check_float 30.0 "NYC-LA" 3936.0 (Geodesy.distance_km nyc la);
  check_float 30.0 "NYC-London" 5570.0 (Geodesy.distance_km nyc london);
  check_float 1e-9 "self" 0.0 (Geodesy.distance_km nyc nyc)

let test_distance_symmetric () =
  check_float 1e-6 "symmetric" (Geodesy.distance_km nyc la) (Geodesy.distance_km la nyc)

let test_c_latency () =
  (* 3000 km at c is almost exactly 10 ms. *)
  let d = Geodesy.distance_km nyc la in
  check_float 1e-9 "c-latency" (d /. 299792.458 *. 1000.0) (Geodesy.c_latency_ms nyc la)

let test_destination_roundtrip () =
  let b = Geodesy.initial_bearing_deg nyc chicago in
  let d = Geodesy.distance_km nyc chicago in
  let p = Geodesy.destination nyc ~bearing_deg:b ~distance_km:d in
  check_float 1.0 "arrives" 0.0 (Geodesy.distance_km p chicago)

let test_interpolate_endpoints () =
  let p0 = Geodesy.interpolate nyc la ~frac:0.0 in
  let p1 = Geodesy.interpolate nyc la ~frac:1.0 in
  Alcotest.(check bool) "t=0 is start" true (Coord.equal p0 nyc);
  Alcotest.(check bool) "t=1 is end" true (Coord.equal p1 la)

let test_interpolate_midpoint () =
  let mid = Geodesy.midpoint nyc la in
  let d1 = Geodesy.distance_km nyc mid and d2 = Geodesy.distance_km mid la in
  check_float 0.5 "equidistant" d1 d2;
  check_float 1.0 "on path" (Geodesy.distance_km nyc la) (d1 +. d2)

let test_sample_path () =
  let pts = Geodesy.sample_path nyc chicago ~step_km:100.0 in
  Alcotest.(check bool) "enough points" true (Array.length pts >= 12);
  Alcotest.(check bool) "starts at nyc" true (Coord.equal pts.(0) nyc);
  Alcotest.(check bool) "ends at chicago" true
    (Coord.equal pts.(Array.length pts - 1) chicago);
  (* path length along samples equals great-circle distance *)
  check_float 0.5 "length" (Geodesy.distance_km nyc chicago) (Geodesy.path_length_km pts)

let test_cross_track () =
  let mid = Geodesy.midpoint nyc la in
  check_float 0.5 "on-path point" 0.0
    (Geodesy.cross_track_km mid ~path_start:nyc ~path_end:la);
  let off = Geodesy.destination mid ~bearing_deg:(Geodesy.initial_bearing_deg mid la +. 90.0) ~distance_km:50.0 in
  check_float 2.0 "50km off" 50.0 (Geodesy.cross_track_km off ~path_start:nyc ~path_end:la)

(* ---------- Grid ---------- *)

let test_grid_nearby () =
  let g = Grid.create ~cell_deg:0.5 in
  Grid.add g nyc "nyc";
  Grid.add g la "la";
  Grid.add g chicago "chi";
  let near_nyc = Grid.nearby g nyc ~radius_km:100.0 in
  Alcotest.(check int) "one near nyc" 1 (List.length near_nyc);
  let all = Grid.nearby g nyc ~radius_km:5000.0 in
  Alcotest.(check int) "all within 5000km" 3 (List.length all);
  Alcotest.(check int) "length" 3 (Grid.length g)

let test_grid_fold () =
  let g = Grid.of_list ~cell_deg:1.0 [ (nyc, 1); (la, 2); (chicago, 3) ] in
  let sum = Grid.fold g ~init:0 ~f:(fun acc _ v -> acc + v) in
  Alcotest.(check int) "fold sum" 6 sum

let test_grid_fold_order_independent () =
  (* The fold visits cells in sorted key order, so on points in
     distinct cells the sequence it produces is a pure function of the
     contents — not of the insertion order, which perturbs [Hashtbl]'s
     internal layout (regression: the old [Hashtbl.fold] traversal
     leaked hash order into any accumulator). *)
  let pts =
    (* A lattice one point per cell at cell_deg 1.0. *)
    List.init 96 (fun i ->
        (coord ~lat:(20.0 +. float_of_int (i mod 12)) ~lon:(-130.0 +. float_of_int (i / 12)), i))
  in
  let visit order =
    let g = Grid.of_list ~cell_deg:1.0 order in
    List.rev (Grid.fold g ~init:[] ~f:(fun acc _ v -> v :: acc))
  in
  let forward = visit pts in
  Alcotest.(check (list int)) "reverse insertion, identical fold sequence" forward
    (visit (List.rev pts));
  let shuffled =
    let rng = Cisp_util.Rng.create 41 in
    let arr = Array.of_list pts in
    Cisp_util.Rng.shuffle rng arr;
    Array.to_list arr
  in
  Alcotest.(check (list int)) "shuffled insertion, identical fold sequence" forward
    (visit shuffled)

let test_grid_antimeridian () =
  (* Neighbours straddling the +/-180 meridian: the query window wraps
     and must find towers on both sides (regression — the unwrapped
     column range [179.9 - w, 179.9 + w] never reached cells stored
     near lon = -179.9). *)
  let g = Grid.create ~cell_deg:0.5 in
  let east = coord ~lat:10.0 ~lon:179.9 in
  let west = coord ~lat:10.0 ~lon:(-179.9) in
  Grid.add g east "east";
  Grid.add g west "west";
  let from_east = Grid.nearby g east ~radius_km:100.0 in
  Alcotest.(check int) "east sees both" 2 (List.length from_east);
  let from_west = Grid.nearby g west ~radius_km:100.0 in
  Alcotest.(check int) "west sees both" 2 (List.length from_west);
  (* A window that covers the wrap plus the stored cells exactly once:
     no duplicates from the two column ranges overlapping. *)
  let wide = Grid.nearby g east ~radius_km:3000.0 in
  Alcotest.(check int) "no duplicates in wrapped window" 2 (List.length wide);
  (* Frozen and unfrozen traversals agree across the seam. *)
  Grid.freeze g;
  Alcotest.(check int) "frozen east sees both" 2 (List.length (Grid.nearby g east ~radius_km:100.0))

let test_grid_freeze_equivalence () =
  let rng = Cisp_util.Rng.create 77 in
  let pts =
    List.init 200 (fun i ->
        ( coord
            ~lat:(Cisp_util.Rng.uniform rng 20.0 55.0)
            ~lon:(Cisp_util.Rng.uniform rng (-130.0) (-60.0)),
          i ))
  in
  let g = Grid.of_list ~cell_deg:0.5 pts in
  let probe () =
    List.map
      (fun (p, _) -> List.sort compare (List.map snd (Grid.nearby g p ~radius_km:150.0)))
      pts
  in
  let before = probe () in
  Grid.freeze g;
  let after = probe () in
  Alcotest.(check bool) "freeze changes no query result" true (before = after);
  (* Adding after freeze invalidates the frozen index transparently. *)
  let extra = coord ~lat:40.0 ~lon:(-100.0) in
  Grid.add g extra 999;
  Alcotest.(check bool) "member visible after post-freeze add" true
    (List.exists (fun (_, v) -> v = 999) (Grid.nearby g extra ~radius_km:10.0))

let test_grid_radius_exact () =
  (* Points right at the radius boundary must not be missed by the
     cell-range computation. *)
  let center = coord ~lat:45.0 ~lon:0.0 in
  let g = Grid.create ~cell_deg:0.5 in
  for i = 0 to 35 do
    let b = float_of_int i *. 10.0 in
    Grid.add g (Geodesy.destination center ~bearing_deg:b ~distance_km:99.0) i
  done;
  let found = Grid.nearby g center ~radius_km:100.0 in
  Alcotest.(check int) "all 36 found" 36 (List.length found)

let prop_destination_distance =
  QCheck.Test.make ~name:"destination lands at requested distance" ~count:300
    QCheck.(triple (float_range 25.0 49.0) (float_range (-120.0) (-70.0)) (pair (float_range 0.0 360.0) (float_range 1.0 500.0)))
    (fun (lat, lon, (bearing, dist)) ->
      let p = coord ~lat ~lon in
      let q = Geodesy.destination p ~bearing_deg:bearing ~distance_km:dist in
      Float.abs (Geodesy.distance_km p q -. dist) < 0.5)

let prop_triangle_inequality =
  QCheck.Test.make ~name:"geodesic triangle inequality" ~count:300
    QCheck.(triple (pair (float_range 25.0 49.0) (float_range (-120.0) (-70.0)))
              (pair (float_range 25.0 49.0) (float_range (-120.0) (-70.0)))
              (pair (float_range 25.0 49.0) (float_range (-120.0) (-70.0))))
    (fun ((la1, lo1), (la2, lo2), (la3, lo3)) ->
      let a = coord ~lat:la1 ~lon:lo1
      and b = coord ~lat:la2 ~lon:lo2
      and c = coord ~lat:la3 ~lon:lo3 in
      Geodesy.distance_km a c
      <= Geodesy.distance_km a b +. Geodesy.distance_km b c +. 1e-6)

(* Rng-driven: random coordinate pairs from a seeded generator, so
   failures reproduce from the printed seed alone. *)
let random_coord rng =
  Coord.make
    ~lat:(Cisp_util.Rng.uniform rng (-60.0) 60.0)
    ~lon:(Cisp_util.Rng.uniform rng (-180.0) 180.0)

let prop_distance_symmetric =
  QCheck.Test.make ~name:"distance is symmetric" ~count:300 QCheck.small_int (fun seed ->
      let rng = Cisp_util.Rng.create seed in
      let a = random_coord rng and b = random_coord rng in
      Float.abs (Geodesy.distance_km a b -. Geodesy.distance_km b a) < 1e-9)

let prop_interpolate_endpoints =
  QCheck.Test.make ~name:"interpolate hits both endpoints" ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Cisp_util.Rng.create (seed + 500) in
      let a = random_coord rng and b = random_coord rng in
      Geodesy.distance_km (Geodesy.interpolate a b ~frac:0.0) a < 1e-6
      && Geodesy.distance_km (Geodesy.interpolate a b ~frac:1.0) b < 1e-6)

let prop_interpolate_on_segment =
  QCheck.Test.make ~name:"interpolate splits distance proportionally" ~count:200
    QCheck.(pair (float_range 0.0 1.0)
              (pair (pair (float_range 25.0 49.0) (float_range (-120.0) (-70.0)))
                 (pair (float_range 25.0 49.0) (float_range (-120.0) (-70.0)))))
    (fun (t, ((la1, lo1), (la2, lo2))) ->
      let a = coord ~lat:la1 ~lon:lo1 and b = coord ~lat:la2 ~lon:lo2 in
      let p = Geodesy.interpolate a b ~frac:t in
      let d = Geodesy.distance_km a b in
      Float.abs (Geodesy.distance_km a p -. (t *. d)) < 1.0)

let suites =
  [
    ( "geo.coord",
      [
        Alcotest.test_case "validation" `Quick test_coord_validation;
        Alcotest.test_case "bbox" `Quick test_coord_bbox;
        Alcotest.test_case "compare" `Quick test_coord_compare;
      ] );
    ( "geo.geodesy",
      [
        Alcotest.test_case "known distances" `Quick test_distance_known;
        Alcotest.test_case "symmetric" `Quick test_distance_symmetric;
        Alcotest.test_case "c-latency" `Quick test_c_latency;
        Alcotest.test_case "destination roundtrip" `Quick test_destination_roundtrip;
        Alcotest.test_case "interpolate endpoints" `Quick test_interpolate_endpoints;
        Alcotest.test_case "interpolate midpoint" `Quick test_interpolate_midpoint;
        Alcotest.test_case "sample path" `Quick test_sample_path;
        Alcotest.test_case "cross track" `Quick test_cross_track;
        QCheck_alcotest.to_alcotest prop_destination_distance;
        QCheck_alcotest.to_alcotest prop_triangle_inequality;
        QCheck_alcotest.to_alcotest prop_distance_symmetric;
        QCheck_alcotest.to_alcotest prop_interpolate_endpoints;
        QCheck_alcotest.to_alcotest prop_interpolate_on_segment;
      ] );
    ( "geo.grid",
      [
        Alcotest.test_case "nearby" `Quick test_grid_nearby;
        Alcotest.test_case "fold" `Quick test_grid_fold;
        Alcotest.test_case "fold order-independent" `Quick test_grid_fold_order_independent;
        Alcotest.test_case "antimeridian wrap" `Quick test_grid_antimeridian;
        Alcotest.test_case "freeze equivalence" `Quick test_grid_freeze_equivalence;
        Alcotest.test_case "radius boundary" `Quick test_grid_radius_exact;
      ] );
  ]
